"""Overload brownout ladder: staged degradation before shedding.

Scheduler-level tests drive :meth:`update_brownout` directly with
synthetic queues; engine-level tests check the per-token attribution
invariant (every token served below full quality names its stage) and
the no-ladder bit-identity guarantee (a configured-but-idle ladder
changes nothing).
"""

import numpy as np
import pytest

from repro.core.config import LongSightConfig
from repro.core.hybrid import LongSightAttention
from repro.llm.model import Transformer
from repro.obs import MetricsRegistry, Obs, Tracer
from repro.serve.engine import ServeEngine
from repro.serve.paged_kv import PagedKVPool
from repro.serve.scheduler import (BROWNOUT_STAGES, BrownoutPolicy,
                                   ContinuousBatchScheduler, ServeRequest,
                                   SloPolicy)
from tests.conftest import TINY

LS = LongSightConfig(window=8, n_sink=4, top_k=12, thresholds=3)


def _request(i, prompt_tokens=8, max_new=4, arrival=0.0):
    return ServeRequest(request_id=i,
                        prompt=np.zeros(prompt_tokens, dtype=np.int64),
                        max_new_tokens=max_new, arrival_s=arrival)


def _scheduler(brownout, n_blocks=8, block_tokens=4, **policy):
    pool = PagedKVPool(TINY, n_blocks=n_blocks, block_tokens=block_tokens)
    return ContinuousBatchScheduler(
        pool, SloPolicy(brownout=brownout, **policy))


def _queue(sched, n, arrival=0.0):
    for i in range(n):
        sched.submit(_request(100 + i, arrival=arrival + i * 1e-3))


class TestPolicyValidation:
    def test_stage_names_cover_the_ladder(self):
        assert BROWNOUT_STAGES == ("normal", "shrink_topk",
                                   "raise_threshold", "dense_pin", "shed")

    @pytest.mark.parametrize("kwargs", [
        dict(queue_high=(6, 10, 14)),            # not four stages
        dict(queue_high=(6, 6, 14, 18)),         # not increasing
        dict(budget_fractions=(0.5, 0.25, 0.75, 1.0)),
        dict(exit_fraction=1.0),
        dict(top_k_scale=0.0),
        dict(admit_per_step=0),
        dict(shed_to_depth=0),
    ])
    def test_invalid_knobs_raise(self, kwargs):
        with pytest.raises(ValueError):
            BrownoutPolicy(**kwargs)


class TestLadderTransitions:
    def test_escalation_is_immediate(self):
        sched = _scheduler(BrownoutPolicy(queue_high=(2, 4, 6, 8)))
        _queue(sched, 6)
        assert sched.update_brownout(now=0.1) == 3
        assert sched.brownout_transitions == 1

    def test_deescalation_is_one_stage_with_hysteresis(self):
        sched = _scheduler(BrownoutPolicy(queue_high=(2, 4, 6, 8),
                                          exit_fraction=0.5))
        _queue(sched, 6)
        assert sched.update_brownout(now=0.1) == 3
        # Drain below the *current* stage's entry point: not enough —
        # exit needs depth <= exit_fraction * entry (hysteresis against
        # chatter around the threshold).
        sched._queues["default"] = sched._queues["default"][:4]
        assert sched.update_brownout(now=0.2) == 3  # 4 > 0.5 * 6
        sched._queues["default"] = sched._queues["default"][:3]
        assert sched.update_brownout(now=0.3) == 2  # one stage down
        assert sched.update_brownout(now=0.4) == 2  # 3 > 0.5 * 4
        sched._queues["default"] = []
        # Even an empty queue steps down one stage per pass.
        assert sched.update_brownout(now=0.5) == 1
        assert sched.update_brownout(now=0.6) == 0

    def test_head_wait_signal_escalates(self):
        sched = _scheduler(BrownoutPolicy(
            queue_high=(50, 60, 70, 80), ttft_budget_s=1.0,
            budget_fractions=(0.25, 0.5, 0.75, 1.0)))
        _queue(sched, 1, arrival=0.0)
        assert sched.update_brownout(now=0.6) == 2    # wait 0.6 >= 0.5
        assert sched.update_brownout(now=1.1) == 4    # budget blown

    def test_stage4_sheds_youngest_beyond_depth(self):
        sched = _scheduler(BrownoutPolicy(queue_high=(1, 2, 3, 4),
                                          shed_to_depth=2))
        _queue(sched, 6)
        assert sched.update_brownout(now=0.1) == 4
        kept = [r.request_id for r in sched.queued]
        assert kept == [100, 101]  # oldest kept, youngest shed
        shed = [r.request_id for r in sched.finished]
        assert sorted(shed) == [102, 103, 104, 105]
        assert all(r.events.shed and r.events.rejected
                   for r in sched.finished)
        assert sched.obs.metrics.counter("serve.shed.brownout").value == 4

    def test_admission_paced_while_browned_out(self):
        sched = _scheduler(BrownoutPolicy(queue_high=(2, 10, 11, 12),
                                          admit_per_step=1),
                           n_blocks=16)
        _queue(sched, 4)
        sched.update_brownout(now=0.1)
        assert sched.brownout_stage == 1
        assert len(sched.admit(now=0.1)) == 1  # paced, capacity for more
        sched.brownout_stage = 0
        assert len(sched.admit(now=0.1)) == 3  # normal admission

    def test_no_policy_is_always_stage_zero(self):
        sched = _scheduler(None)
        _queue(sched, 20)
        assert sched.update_brownout(now=5.0) == 0
        assert sched.brownout_transitions == 0


class TestEngineAttribution:
    @pytest.fixture(scope="class")
    def model(self):
        return Transformer(TINY, seed=0)

    def _run(self, model, brownout, n_requests=6, max_new=6):
        rng = np.random.default_rng(3)
        obs = Obs(MetricsRegistry(enabled=True), Tracer(enabled=False))
        pool = PagedKVPool(TINY, n_blocks=64, block_tokens=16, obs=obs)
        engine = ServeEngine(
            model, pool, lambda r: LongSightAttention(LS),
            policy=SloPolicy(max_decode_batch=2, brownout=brownout),
            obs=obs)
        requests = [ServeRequest(
            request_id=i,
            prompt=rng.integers(0, TINY.vocab_size, size=12),
            max_new_tokens=max_new, arrival_s=0.0)
            for i in range(n_requests)]
        report = engine.run(requests)
        return report, requests, engine

    def test_idle_ladder_is_bit_identical_to_no_ladder(self, model):
        # Entry points no burst of 6 can reach: the configured ladder
        # must never engage, and outputs must match a ladder-free run.
        lazy = BrownoutPolicy(queue_high=(50, 60, 70, 80))
        _, plain, _ = self._run(model, None)
        report, laddered, _ = self._run(model, lazy)
        assert [r.outputs for r in laddered] == [r.outputs for r in plain]
        assert report.brownout_tokens == 0
        assert report.as_dict()["brownout"]["stage_tokens"] == {}

    def test_every_degraded_token_names_its_stage(self, model):
        # Aggressive ladder: stages engage while the queue drains; the
        # per-request attribution must sum to the report-level count and
        # only name real ladder stages.
        eager = BrownoutPolicy(queue_high=(1, 2, 3, 50),
                               admit_per_step=1)
        report, requests, engine = self._run(model, eager, n_requests=8)
        assert report.brownout_tokens > 0
        per_request = sum(r.events.brownout_token_total for r in requests)
        assert per_request == report.brownout_tokens
        for stage in report.brownout_stage_tokens:
            assert 1 <= stage <= 3  # stage 4 sheds, it never serves
        stage_sum = sum(report.brownout_stage_tokens.values())
        assert stage_sum == report.brownout_tokens
        counted = engine.obs.metrics.counter(
            "serve.brownout.stage_tokens").value
        assert counted == report.brownout_tokens

    def test_browned_tokens_counted_in_registry_per_stage(self, model):
        eager = BrownoutPolicy(queue_high=(1, 2, 3, 50),
                               admit_per_step=1)
        report, _, engine = self._run(model, eager, n_requests=8)
        metrics = engine.obs.metrics
        per_stage = {
            stage: metrics.counter(
                f"serve.brownout.stage{stage}_tokens").value
            for stage in report.brownout_stage_tokens}
        assert per_stage == report.brownout_stage_tokens
