"""Synthetic corpus tests: determinism, structure, long-range bursts."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.synthetic import MarkovSource, pg_like, wiki2_like


class TestMarkovSource:
    def test_deterministic(self):
        source = MarkovSource(seed=5)
        a = source.generate(5000, seed=1)
        b = source.generate(5000, seed=1)
        np.testing.assert_array_equal(a, b)

    def test_seed_changes_stream(self):
        source = MarkovSource(seed=5)
        assert not np.array_equal(source.generate(2000, seed=1),
                                  source.generate(2000, seed=2))

    @given(st.integers(min_value=1, max_value=3000))
    @settings(max_examples=15, deadline=None)
    def test_length_and_vocab_bounds(self, n):
        source = MarkovSource(vocab_size=128, seed=0)
        tokens = source.generate(n, seed=0)
        assert len(tokens) == n
        assert tokens.min() >= 0 and tokens.max() < 128

    def test_copy_bursts_replay_history(self):
        source = MarkovSource(seed=3, copy_prob=0.05,
                              copy_back=(32, 256))
        tokens = source.generate(20000, seed=4)
        markers = np.where(tokens == source.copy_marker)[0]
        assert len(markers) > 20
        # Each burst must literally appear earlier in the stream.
        verified = 0
        for m in markers[:20]:
            burst = tokens[m + 1 : m + 13]
            if len(burst) < 12:
                continue
            hay = tokens[:m]
            window = np.lib.stride_tricks.sliding_window_view(hay, 12)
            if (window == burst).all(axis=1).any():
                verified += 1
        assert verified >= 15  # some bursts are clipped/overlapping

    def test_vocab_too_small_rejected(self):
        with pytest.raises(ValueError):
            MarkovSource(vocab_size=4, branching=8)

    def test_markov_structure_is_sparse(self):
        """Each token should be followed by only a few successors."""
        source = MarkovSource(seed=0, copy_prob=0.0)
        tokens = source.generate(30000, seed=0)
        tok = int(tokens[100])
        next_tokens = {int(tokens[i + 1]) for i in np.where(tokens == tok)[0]
                       if i + 1 < len(tokens)}
        assert len(next_tokens) <= source.branching


class TestCorpora:
    def test_pg_like_is_one_stream(self):
        tokens = pg_like(5000, seed=0)
        assert len(tokens) == 5000
        assert (tokens == 0).sum() == 0  # no passage separators

    def test_wiki2_like_has_separators(self):
        tokens = wiki2_like(8000, seed=0)
        assert len(tokens) == 8000
        seps = np.where(tokens == 0)[0]
        assert len(seps) >= 4  # multiple short passages
        gaps = np.diff(seps)
        assert gaps.max() <= 1025

    def test_corpora_deterministic(self):
        np.testing.assert_array_equal(pg_like(1000, seed=7),
                                      pg_like(1000, seed=7))
        np.testing.assert_array_equal(wiki2_like(1000, seed=7),
                                      wiki2_like(1000, seed=7))

    def test_vocab_size_respected(self):
        tokens = pg_like(2000, vocab_size=64, seed=0)
        assert tokens.max() < 64
