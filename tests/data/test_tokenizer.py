"""Byte-level tokenizer tests."""

import numpy as np
import pytest

from repro.data.tokenizer import CharTokenizer


def test_encode_bounds():
    tok = CharTokenizer(vocab_size=512)
    ids = tok.encode("hello, world! é")
    assert ids.min() >= 2
    assert ids.max() < 512


def test_ascii_round_trip():
    tok = CharTokenizer(vocab_size=512)
    text = "The quick brown fox."
    assert tok.decode(tok.encode(text)) == text


def test_reserved_ids_decode_to_space():
    tok = CharTokenizer()
    assert tok.decode(np.array([0, 1])) == "  "


def test_too_small_vocab():
    with pytest.raises(ValueError):
        CharTokenizer(vocab_size=4)


def test_deterministic():
    tok = CharTokenizer()
    np.testing.assert_array_equal(tok.encode("abc"), tok.encode("abc"))
