"""Offload latency composition tests."""

import dataclasses

import pytest

from repro.drex.dram import LPDDR5X
from repro.drex.timing import DrexTimingModel, LatencyBreakdown, OffloadCost


@pytest.fixture
def model():
    return DrexTimingModel()


def _cost(n_keys=10000, survivors=500, retrieved=100, heads=4, d=64, k=1024):
    return OffloadCost(n_keys=n_keys, n_survivors=survivors,
                       n_retrieved=retrieved, n_query_heads=heads,
                       head_dim=d, top_k=k)


class TestBreakdown:
    def test_total_is_sum_of_components(self):
        b = LatencyBreakdown(1, 2, 3, 4, 5, 6, 7)
        assert b.total_ns == 28
        assert b.compute_ns == 15

    def test_add_and_pmax(self):
        a = LatencyBreakdown(1, 0, 2, 0, 0, 0, 0)
        b = LatencyBreakdown(0, 5, 1, 0, 0, 0, 0)
        s = a + b
        assert (s.address_gen_ns, s.filter_ns, s.bitmap_read_ns) == (1, 5, 3)
        m = LatencyBreakdown.pmax([a, b])
        assert (m.address_gen_ns, m.filter_ns, m.bitmap_read_ns) == (1, 5, 2)

    def test_components_dict_covers_fields(self):
        b = LatencyBreakdown()
        assert set(b.components()) == {
            "address_gen", "filter", "bitmap_read", "score", "rank",
            "value_read", "queue"}


class TestEpochs:
    def test_one_epoch_up_to_full_package(self, model):
        assert model.epochs(1) == 1
        assert model.epochs(131072) == 1  # 1024 blocks = 1024 PFUs

    def test_wraps_beyond_package(self, model):
        assert model.epochs(131073) == 2
        assert model.epochs(131072 * 3) == 3


class TestPackageLatency:
    def test_includes_paper_constants(self, model):
        b = model.package_latency(_cost())
        assert b.address_gen_ns == LPDDR5X.address_gen_ns
        assert b.filter_ns == pytest.approx(64 * 1.25)

    def test_score_grows_with_survivors(self, model):
        a = model.package_latency(_cost(survivors=500))
        b = model.package_latency(_cost(survivors=5000))
        assert b.score_ns > a.score_ns
        assert b.filter_ns == a.filter_ns  # filtering independent of pass rate

    def test_value_read_empty_at_package_level(self, model):
        assert model.package_latency(_cost()).value_read_ns == 0.0


class TestOffload:
    def test_empty(self, model):
        assert model.offload_latency([], head_dim=64).total_ns == 0.0

    def test_parallel_packages_use_max(self, model):
        small = _cost(n_keys=1000, survivors=50, retrieved=50)
        large = _cost(n_keys=100000, survivors=5000, retrieved=100)
        combined = model.offload_latency([small, large], head_dim=64)
        alone = model.offload_latency([large], head_dim=64)
        assert combined.compute_ns == pytest.approx(alone.compute_ns)

    def test_value_read_aggregates_over_packages(self, model):
        one = model.offload_latency([_cost(retrieved=100)], head_dim=64)
        two = model.offload_latency([_cost(retrieved=100)] * 2, head_dim=64)
        assert two.value_read_ns > one.value_read_ns

    def test_value_read_scales_with_k_and_dim(self, model):
        a = model.value_read_ns(100, 64)
        b = model.value_read_ns(200, 64)
        c = model.value_read_ns(100, 128)
        assert b > a and c > a

    def test_request_submit_small(self, model):
        t = model.request_submit_ns(32, 128)
        assert t < 1000 + model.cxl_latency_ns
