"""End-to-end integration: DReX-offload backend == software hybrid."""

import numpy as np
import pytest

from repro.core.config import LongSightConfig
from repro.core.hybrid import LongSightAttention
from repro.core.itq import fit_itq
from repro.drex.backend import DrexOffloadBackend
from repro.llm.model import Transformer
from tests.conftest import TINY


@pytest.fixture(scope="module")
def model():
    return Transformer(TINY, seed=5)


@pytest.fixture(scope="module")
def tokens():
    return np.random.default_rng(21).integers(0, TINY.vocab_size, size=70)


def test_matches_software_backend_exactly(model, tokens):
    """With flush granularity 1 the device-driven path is bit-identical to
    the pure software hybrid — the paper's Figure 2b equivalence."""
    config = LongSightConfig(window=8, n_sink=4, top_k=12, thresholds=5)
    software = model.forward_full(tokens, backend=LongSightAttention(config),
                                  block_size=16)
    hardware = model.forward_full(
        tokens, backend=DrexOffloadBackend(TINY, config, flush_granularity=1),
        block_size=16)
    np.testing.assert_allclose(hardware, software, atol=1e-12)


def test_matches_software_backend_with_itq(model, tokens):
    rotations = fit_itq(model, tokens[:32], n_iter=3)
    config = LongSightConfig(window=8, n_sink=4, top_k=12, thresholds=6,
                             use_itq=True)
    software = model.forward_full(
        tokens, backend=LongSightAttention(config, rotations=rotations),
        block_size=16)
    hardware = model.forward_full(
        tokens, backend=DrexOffloadBackend(TINY, config, rotations=rotations,
                                           flush_granularity=1),
        block_size=16)
    np.testing.assert_allclose(hardware, software, atol=1e-12)


def test_group_flushing_keeps_staged_tokens_dense(model, tokens):
    """With the default group size, unflushed tokens stay in the dense
    (staging) region — output must equal a software run whose dense region
    is extended the same way, and never lose tokens."""
    config = LongSightConfig(window=8, n_sink=4, top_k=64, thresholds=0)
    backend = DrexOffloadBackend(TINY, config, flush_granularity=16)
    hardware = model.forward_full(tokens, backend=backend, block_size=16)
    # With thresholds=0 and top_k large, every token is attended either
    # densely or via sparse retrieval => identical to dense attention.
    dense = model.forward_full(tokens)
    np.testing.assert_allclose(hardware, dense, atol=1e-12)


def test_latency_accumulates(model, tokens):
    config = LongSightConfig(window=8, n_sink=4, top_k=8, thresholds=4)
    backend = DrexOffloadBackend(TINY, config, flush_granularity=1)
    model.forward_full(tokens, backend=backend, block_size=16)
    assert backend.n_offloads > 0
    assert backend.total_latency.total_ns > 0
    mean = backend.mean_offload_latency()
    assert 0 < mean.total_ns < backend.total_latency.total_ns


def test_requires_rotations_for_itq():
    with pytest.raises(ValueError):
        DrexOffloadBackend(TINY, LongSightConfig(use_itq=True))


def test_device_population_follows_flush(model, tokens):
    config = LongSightConfig(window=8, n_sink=4, top_k=8, thresholds=0)
    backend = DrexOffloadBackend(TINY, config, flush_granularity=1)
    model.forward_full(tokens, backend=backend, block_size=16)
    n = len(tokens)
    expected = n - 1 - config.window + 1 - config.n_sink
    assert backend.device.context_length(0, 0, 0) == expected
