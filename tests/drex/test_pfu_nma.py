"""PFU and NMA functional + timing models."""

import numpy as np
import pytest

from repro.core.scf import pack_signs, scf_filter
from repro.core.topk import top_k_indices
from repro.drex.nma import NearMemoryAccelerator
from repro.drex.pfu import PimFilterUnit


class TestPfu:
    def test_matches_reference_filter(self, rng):
        pfu = PimFilterUnit()
        keys = rng.normal(size=(128, 64))
        queries = rng.normal(size=(4, 64))
        bitmap = pfu.filter_block(pack_signs(keys), pack_signs(queries),
                                  head_dim=64, threshold=33)
        np.testing.assert_array_equal(bitmap, scf_filter(queries, keys, 33))

    def test_partial_block(self, rng):
        pfu = PimFilterUnit()
        keys = rng.normal(size=(37, 16))
        queries = rng.normal(size=(1, 16))
        bitmap = pfu.filter_block(pack_signs(keys), pack_signs(queries), 16, 8)
        assert bitmap.shape == (1, 37)

    def test_limits_enforced(self, rng):
        pfu = PimFilterUnit()
        keys = pack_signs(rng.normal(size=(129, 16)))
        queries = pack_signs(rng.normal(size=(1, 16)))
        with pytest.raises(ValueError):
            pfu.filter_block(keys, queries, 16, 0)
        keys = pack_signs(rng.normal(size=(10, 16)))
        queries = pack_signs(rng.normal(size=(17, 16)))
        with pytest.raises(ValueError):
            pfu.filter_block(keys, queries, 16, 0)

    def test_bitmap_latency_is_paper_constant(self):
        pfu = PimFilterUnit()
        assert pfu.bitmap_latency_ns(128) == pytest.approx(160.0)  # d x 1.25
        assert pfu.bitmap_latency_ns(64) == pytest.approx(80.0)


class TestNmaFunctional:
    def test_matches_per_query_topk(self, rng):
        nma = NearMemoryAccelerator()
        queries = rng.normal(size=(4, 32))
        keys = rng.normal(size=(60, 32))
        result = nma.score_and_rank(queries, keys, k=9)
        for g in range(4):
            expected = top_k_indices(keys @ queries[g], 9)
            np.testing.assert_array_equal(result.indices[g], expected)
            np.testing.assert_allclose(result.scores[g],
                                       (keys @ queries[g])[expected])

    def test_valid_mask_restricts_ranking(self, rng):
        nma = NearMemoryAccelerator()
        queries = rng.normal(size=(2, 16))
        keys = rng.normal(size=(30, 16))
        mask = rng.random(size=(2, 30)) < 0.5
        result = nma.score_and_rank(queries, keys, k=30, valid_mask=mask)
        for g in range(2):
            assert set(result.indices[g]) == set(np.flatnonzero(mask[g]))

    def test_empty_survivors(self, rng):
        nma = NearMemoryAccelerator()
        result = nma.score_and_rank(rng.normal(size=(3, 8)),
                                    np.empty((0, 8)), k=5)
        assert all(len(idx) == 0 for idx in result.indices)

    def test_hardware_top_k_cap(self, rng):
        nma = NearMemoryAccelerator()
        queries = rng.normal(size=(1, 8))
        keys = rng.normal(size=(2000, 8))
        result = nma.score_and_rank(queries, keys, k=5000)
        assert len(result.indices[0]) == 1024  # hardware cap


class TestNmaTiming:
    def test_scoring_memory_bound_regime(self):
        nma = NearMemoryAccelerator()
        # Many survivors, one query: streaming dominates.
        t = nma.scoring_latency_ns(n_survivors=100_000, head_dim=128,
                                   n_queries=1)
        bw = nma.timings.package_bandwidth(nma.geometry)
        expected = 100_000 * 128 * 2 / bw * 1e9
        assert t == pytest.approx(expected)

    def test_scoring_monotone(self):
        nma = NearMemoryAccelerator()
        a = nma.scoring_latency_ns(1000, 64, 4)
        b = nma.scoring_latency_ns(2000, 64, 4)
        assert b > a

    def test_bitmap_read_pipelines(self):
        nma = NearMemoryAccelerator()
        one = nma.bitmap_read_latency_ns(n_blocks=8)   # one per channel
        many = nma.bitmap_read_latency_ns(n_blocks=1024)
        assert one == pytest.approx(120.4)
        # 128 per channel: 120.4 + 127 x 4 ns, NOT 128 x 120.4.
        assert many == pytest.approx(120.4 + 127 * 4.0)

    def test_ranking_drain(self):
        nma = NearMemoryAccelerator()
        assert nma.ranking_latency_ns(1024) == pytest.approx(1024 / 1.6)
        assert nma.ranking_latency_ns(5000) == pytest.approx(1024 / 1.6)
