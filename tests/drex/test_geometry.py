"""DReX geometry: the paper's published counts must fall out."""

import pytest

from repro.drex.geometry import DREX_DEFAULT, DrexGeometry


def test_paper_counts():
    g = DREX_DEFAULT
    assert g.n_packages == 8
    assert g.banks_per_package == 1024
    assert g.total_banks == 8192
    assert g.n_pfus == 8192            # Table 2
    assert g.n_nmas == 8
    assert g.capacity_bytes == 512 * 1024**3


def test_layout_capacities():
    g = DREX_DEFAULT
    assert g.keys_per_key_block_group == 1024       # 128 keys x 8 channels
    assert g.max_keys_per_context_slice == 131072   # x 128 banks


def test_derived_row_counts_consistent():
    g = DREX_DEFAULT
    assert g.rows_per_bank * g.row_bytes * g.total_banks == g.capacity_bytes
    assert g.cols_per_row * g.col_bytes == g.row_bytes
    assert g.bank_bytes * g.banks_per_package == g.package_bytes
    assert g.package_bytes * g.n_packages == g.capacity_bytes


def test_pfu_block_limits():
    assert DREX_DEFAULT.pfu_keys_per_block == 128
    assert DREX_DEFAULT.pfu_max_queries == 16
    assert DREX_DEFAULT.max_top_k == 1024


def test_validation():
    with pytest.raises(ValueError):
        DrexGeometry(row_bytes=100, col_bytes=16)


def test_custom_geometry():
    g = DrexGeometry(n_packages=2, channels_per_package=4,
                     banks_per_channel=64, capacity_bytes=2 * 1024**3)
    assert g.total_banks == 512
    assert g.keys_per_key_block_group == 512
