"""Data layout objects and sizing formulas."""

import numpy as np
import pytest

from repro.drex.geometry import DREX_DEFAULT
from repro.drex.layout import (
    ContextSlice,
    KeyBlockGroup,
    UserPartition,
    packages_required,
    rows_per_group,
)


class TestRowsPerGroup:
    def test_head_dim_128(self):
        """d=128: 1 sign row + 16 key rows + 16 value rows per bank."""
        assert rows_per_group(128) == 33

    def test_head_dim_64(self):
        """d=64: sign object is half a row (rounds to 1), 8+8 KV rows."""
        assert rows_per_group(64) == 17

    def test_monotone_in_dim(self):
        dims = [16, 32, 64, 128, 256]
        rows = [rows_per_group(d) for d in dims]
        assert rows == sorted(rows)

    def test_dtype_scaling(self):
        assert rows_per_group(128, dtype_bytes=4) > rows_per_group(128)


class TestContextSlice:
    def _slice(self, n_groups, keys_per_group=1024):
        s = ContextSlice(uid=0, layer=0, kv_head=0, package=2, head_dim=64)
        for g in range(n_groups):
            s.groups.append(KeyBlockGroup(bank_index=g, row_start=0,
                                          rows_per_bank=17, capacity=1024,
                                          n_keys=keys_per_group))
        return s

    def test_counts(self):
        s = self._slice(3)
        assert s.n_keys == 3072
        assert s.capacity == 3072
        assert s.banks_spanned() == 24  # 3 groups x 8 channels

    def test_bytes_used(self):
        s = self._slice(2)
        g = DREX_DEFAULT
        assert s.bytes_used() == 2 * 17 * g.row_bytes * 8

    def test_group_free(self):
        group = KeyBlockGroup(0, 0, 17, capacity=1024, n_keys=1000)
        assert group.free == 24


class TestUserPartition:
    def test_aggregation(self):
        p = UserPartition(uid=7)
        s1 = ContextSlice(7, 0, 0, package=0, head_dim=64)
        s1.groups.append(KeyBlockGroup(0, 0, 17, 1024, 500))
        s2 = ContextSlice(7, 0, 1, package=3, head_dim=64)
        s2.groups.append(KeyBlockGroup(0, 0, 17, 1024, 250))
        p.slices[(0, 0)] = [s1]
        p.slices[(0, 1)] = [s2]
        assert p.total_keys() == 750
        assert p.packages_used() == {0, 3}


class TestPackagesRequired:
    def test_paper_formula(self):
        # 8 KV heads, context exactly one full slice -> 8 package-slices.
        assert packages_required(8, 131072) == 8
        # 1M tokens: ceil(1M / 131072) = 8 slices per head -> 64.
        assert packages_required(8, 1_000_000) == 64

    def test_small_context_still_one_slice_per_head(self):
        assert packages_required(8, 100) == 8

    def test_rounding_up(self):
        assert packages_required(2, 131073) == 4
