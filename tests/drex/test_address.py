"""Physical address mapping: bijection and ordering properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.drex.address import (
    AddressMap,
    PhysicalLocation,
    decode_key_id_address,
    key_id_address,
)
from repro.drex.geometry import DREX_DEFAULT

AM = AddressMap()


@given(st.integers(min_value=0, max_value=DREX_DEFAULT.capacity_bytes - 1))
@settings(max_examples=200, deadline=None)
def test_decode_encode_round_trip(address):
    loc, offset = AM.decode(address)
    assert AM.encode(loc, offset) == address


def test_ordering_col_first():
    """Contiguous addresses walk columns first, then rows, banks, channels,
    packages (Section 7.3.2)."""
    g = DREX_DEFAULT
    loc0, _ = AM.decode(0)
    assert loc0 == PhysicalLocation(0, 0, 0, 0, 0)
    loc_col, _ = AM.decode(g.col_bytes)
    assert loc_col == PhysicalLocation(0, 0, 0, 0, 1)
    loc_row, _ = AM.decode(g.row_bytes)
    assert loc_row == PhysicalLocation(0, 0, 0, 1, 0)
    loc_bank, _ = AM.decode(g.row_bytes * g.rows_per_bank)
    assert loc_bank == PhysicalLocation(0, 0, 1, 0, 0)
    loc_pkg, _ = AM.decode(g.package_bytes)
    assert loc_pkg == PhysicalLocation(1, 0, 0, 0, 0)


def test_last_address():
    g = DREX_DEFAULT
    loc, offset = AM.decode(g.capacity_bytes - 1)
    assert loc.package == g.n_packages - 1
    assert loc.col == g.cols_per_row - 1
    assert offset == g.col_bytes - 1


def test_out_of_range_rejected():
    with pytest.raises(ValueError):
        AM.decode(-1)
    with pytest.raises(ValueError):
        AM.decode(DREX_DEFAULT.capacity_bytes)
    with pytest.raises(ValueError):
        AM.encode(PhysicalLocation(99, 0, 0, 0, 0))


def test_row_address():
    g = DREX_DEFAULT
    addr = AM.row_address(1, 2, 3, 4)
    loc, offset = AM.decode(addr)
    assert (loc.package, loc.channel, loc.bank, loc.row) == (1, 2, 3, 4)
    assert loc.col == 0 and offset == 0


class TestKeyIdAddress:
    @given(st.integers(min_value=0, max_value=127),
           st.integers(min_value=0, max_value=127),
           st.integers(min_value=0, max_value=(1 << 18) - 1))
    @settings(max_examples=100, deadline=None)
    def test_round_trip(self, bank, index, epoch):
        packed = key_id_address(bank, index, epoch)
        assert packed < (1 << 32)
        assert decode_key_id_address(packed) == (bank, index, epoch)

    def test_field_limits(self):
        with pytest.raises(ValueError):
            key_id_address(128, 0, 0)
        with pytest.raises(ValueError):
            key_id_address(0, 128, 0)
        with pytest.raises(ValueError):
            key_id_address(0, 0, 1 << 18)

    def test_bit_layout(self):
        """7 LSBs bank, next 7 bitmap index, 18 MSBs epoch (Section 7.4)."""
        assert key_id_address(0b1010101, 0, 0) == 0b1010101
        assert key_id_address(0, 0b0000011, 0) == 0b0000011 << 7
        assert key_id_address(0, 0, 1) == 1 << 14
