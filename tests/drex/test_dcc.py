"""DCC front-end: queue, CAM, response buffers, polling register."""

import numpy as np
import pytest

from repro.drex.dcc import DrexCxlController, QueueFullError
from repro.drex.descriptors import RequestDescriptor, ResponseDescriptor


def _request(uid, layer=0):
    return RequestDescriptor(uid=uid, layer=layer,
                             queries=np.zeros((4, 16)))


def _response(uid, layer=0):
    return ResponseDescriptor(uid=uid, layer=layer, heads=[])


class TestRegistration:
    def test_register_is_idempotent(self):
        dcc = DrexCxlController()
        a = dcc.register_user(5)
        b = dcc.register_user(5)
        assert a == b
        assert dcc.buffer_index(5) == a

    def test_distinct_buffers(self):
        dcc = DrexCxlController()
        indices = {dcc.register_user(uid) for uid in range(100)}
        assert len(indices) == 100

    def test_exhaustion(self):
        dcc = DrexCxlController()
        for uid in range(DrexCxlController.N_RESPONSE_BUFFERS):
            dcc.register_user(uid)
        with pytest.raises(QueueFullError):
            dcc.register_user(9999)

    def test_unregister_frees_buffer(self):
        dcc = DrexCxlController()
        for uid in range(DrexCxlController.N_RESPONSE_BUFFERS):
            dcc.register_user(uid)
        dcc.unregister_user(3)
        dcc.register_user(8888)  # reuses the freed slot

    def test_unregister_drains_queued_requests(self):
        """Regression: a departed user's queued requests must leave the
        FIFO — they could never complete (no response buffer) and would
        occupy slots forever."""
        dcc = DrexCxlController()
        dcc.register_user(1)
        dcc.register_user(2)
        for _ in range(3):
            dcc.submit(_request(1))
        dcc.submit(_request(2))
        dcc.unregister_user(1)
        assert dcc.pending == 1
        assert dcc.pop_next().uid == 2
        assert dcc.pop_next() is None

    def test_unregister_drain_restores_queue_headroom(self):
        dcc = DrexCxlController()
        dcc.register_user(1)
        for _ in range(DrexCxlController.QUEUE_DEPTH):
            dcc.submit(_request(1))
        dcc.unregister_user(1)
        dcc.register_user(2)
        dcc.submit(_request(2))  # queue no longer full
        assert dcc.pending == 1

    def test_full_buffer_churn_recycles_indices(self):
        """Fill all 512 buffers, unregister everyone, re-register: every
        buffer index and polling bit must be recycled cleanly."""
        dcc = DrexCxlController()
        n = DrexCxlController.N_RESPONSE_BUFFERS
        first = {uid: dcc.register_user(uid) for uid in range(n)}
        for uid in range(n):
            dcc.complete(_response(uid))
        for uid in range(n):
            dcc.unregister_user(uid)
        assert not dcc.polling_register.any()
        second = {uid: dcc.register_user(uid) for uid in range(n, 2 * n)}
        assert sorted(second.values()) == sorted(first.values())
        # Stale completions from the first generation are gone.
        assert all(not dcc.poll(uid) for uid in second)
        with pytest.raises(QueueFullError):
            dcc.register_user(10_000)


class TestQueue:
    def test_fifo_order(self):
        dcc = DrexCxlController()
        for uid in range(3):
            dcc.register_user(uid)
            dcc.submit(_request(uid))
        assert [dcc.pop_next().uid for _ in range(3)] == [0, 1, 2]
        assert dcc.pop_next() is None

    def test_depth_limit(self):
        dcc = DrexCxlController()
        dcc.register_user(0)
        for _ in range(DrexCxlController.QUEUE_DEPTH):
            dcc.submit(_request(0))
        with pytest.raises(QueueFullError):
            dcc.submit(_request(0))
        assert dcc.pending == DrexCxlController.QUEUE_DEPTH

    def test_unregistered_uid_rejected(self):
        dcc = DrexCxlController()
        with pytest.raises(KeyError):
            dcc.submit(_request(42))

    def test_unknown_user_error_is_descriptive(self):
        from repro.errors import ReproError, UnknownUserError

        dcc = DrexCxlController()
        dcc.register_user(7)
        with pytest.raises(UnknownUserError) as excinfo:
            dcc.buffer_index(42)
        message = str(excinfo.value)
        assert "UID 42" in message and "1 users bound" in message
        # Still catchable as KeyError (hardware CAM-miss semantics) and as
        # the shared repro error base.
        assert isinstance(excinfo.value, KeyError)
        assert isinstance(excinfo.value, ReproError)


class TestResponsePath:
    def test_poll_and_read(self):
        dcc = DrexCxlController()
        dcc.register_user(1)
        assert not dcc.poll(1)
        dcc.complete(_response(1))
        assert dcc.poll(1)
        response = dcc.read_response(1)
        assert response.uid == 1
        assert not dcc.poll(1)  # polling bit cleared on read

    def test_read_without_completion(self):
        dcc = DrexCxlController()
        dcc.register_user(1)
        with pytest.raises(RuntimeError):
            dcc.read_response(1)

    def test_polling_register_is_per_user(self):
        dcc = DrexCxlController()
        dcc.register_user(1)
        dcc.register_user(2)
        dcc.complete(_response(2))
        assert not dcc.poll(1)
        assert dcc.poll(2)


class TestDescriptors:
    def test_request_bytes(self):
        r = RequestDescriptor(uid=0, layer=0, queries=np.zeros((32, 128)))
        assert r.n_bytes == 16 + 32 * 128 * 2

    def test_response_max_bytes_bounds_actual(self, rng):
        from repro.drex.descriptors import HeadResult

        heads = [HeadResult(indices=np.arange(10), scores=np.zeros(10),
                            values=rng.normal(size=(10, 64)))
                 for _ in range(4)]
        resp = ResponseDescriptor(uid=0, layer=0, heads=heads)
        assert resp.n_bytes <= ResponseDescriptor.max_bytes(4, 64, top_k=10)

    def test_sign_object_size(self):
        from repro.drex.descriptors import KeySignObject

        obj = KeySignObject(n_keys=128, head_dim=64)
        assert obj.n_bytes == 64 * 16  # d columns of 128 bits
        with pytest.raises(ValueError):
            KeySignObject(n_keys=0, head_dim=64)
        with pytest.raises(ValueError):
            KeySignObject(n_keys=129, head_dim=64)

    def test_key_value_object_sizes(self):
        from repro.drex.descriptors import KeyObject, ValueObject

        assert KeyObject(n_keys=128, head_dim=64).n_bytes == 128 * 64 * 2
        assert ValueObject(n_values=10, head_dim=8,
                           dtype_bytes=4).n_bytes == 320
