"""Discrete-event DReX scheduler tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.drex.geometry import DrexGeometry
from repro.drex.sched import DrexScheduler, OffloadJob, decode_step_jobs

GEO = DrexGeometry()


def test_single_job_latency_is_unit_plus_transfer():
    sched = DrexScheduler()
    job = OffloadJob(job_id=0, arrival_ns=0.0,
                     units=[(p, 100.0) for p in range(8)],
                     value_transfer_ns=50.0)
    outcome = sched.simulate([job])
    assert outcome.results[0].latency_ns == pytest.approx(150.0)
    assert outcome.makespan_ns == pytest.approx(150.0)


def test_two_jobs_same_packages_queue():
    sched = DrexScheduler()
    jobs = [OffloadJob(i, 0.0, [(0, 100.0)], 0.0) for i in range(3)]
    outcome = sched.simulate(jobs)
    finishes = sorted(r.compute_done_ns for r in outcome.results)
    assert finishes == [100.0, 200.0, 300.0]


def test_jobs_on_distinct_packages_parallel():
    sched = DrexScheduler()
    jobs = [OffloadJob(i, 0.0, [(i, 100.0)], 0.0) for i in range(8)]
    outcome = sched.simulate(jobs)
    assert outcome.makespan_ns == pytest.approx(100.0)
    assert outcome.nma_utilization() == pytest.approx(1.0)


def test_cxl_serializes_responses():
    sched = DrexScheduler()
    jobs = [OffloadJob(i, 0.0, [(i, 100.0)], 40.0) for i in range(4)]
    outcome = sched.simulate(jobs)
    # All compute finishes at 100; transfers serialize: 140, 180, 220, 260.
    assert outcome.makespan_ns == pytest.approx(100.0 + 4 * 40.0)
    assert outcome.cxl_busy_ns == pytest.approx(160.0)


def test_value_read_overlaps_compute_of_queued_jobs():
    """Section 9.2: with queued work, transfers hide behind compute."""
    sched = DrexScheduler()
    jobs = [OffloadJob(i, 0.0, [(0, 100.0)], 50.0) for i in range(4)]
    outcome = sched.simulate(jobs)
    # Compute done at 100, 200, 300, 400; each transfer (50) fits in the
    # next job's compute window -> makespan 450, not 100 + 4x(100+50).
    assert outcome.makespan_ns == pytest.approx(450.0)


def test_arrival_times_respected():
    sched = DrexScheduler()
    jobs = [OffloadJob(0, 1000.0, [(0, 10.0)], 0.0)]
    outcome = sched.simulate(jobs)
    assert outcome.results[0].compute_done_ns == pytest.approx(1010.0)
    assert outcome.results[0].latency_ns == pytest.approx(10.0)


def test_job_without_units_completes_immediately():
    sched = DrexScheduler()
    outcome = sched.simulate([OffloadJob(0, 5.0, [], 7.0)])
    assert outcome.results[0].finish_ns == pytest.approx(12.0)


def test_decode_step_jobs_layout():
    jobs = decode_step_jobs(n_users=3, unit_compute_ns=10.0,
                            n_units_per_user=8, value_transfer_ns=1.0)
    assert len(jobs) == 3
    assert all(len(j.units) == 8 for j in jobs)
    # User u's units occupy all 8 packages exactly once.
    packages = {p for p, _ in jobs[1].units}
    assert packages == set(range(8))


def test_slo_attainment_and_percentiles():
    sched = DrexScheduler()
    jobs = [OffloadJob(i, 0.0, [(0, 100.0)], 0.0) for i in range(10)]
    outcome = sched.simulate(jobs)
    assert outcome.slo_attainment(100.0) == pytest.approx(0.1)
    assert outcome.slo_attainment(1000.0) == pytest.approx(1.0)
    assert outcome.p99_latency_ns == outcome.p99_latency_ns  # callable ok
    assert outcome.mean_latency_ns() == pytest.approx(550.0)


@given(n_users=st.integers(min_value=1, max_value=40),
       units=st.integers(min_value=1, max_value=16),
       compute=st.floats(min_value=1.0, max_value=1e4),
       transfer=st.floats(min_value=0.0, max_value=1e4))
@settings(max_examples=30, deadline=None)
def test_matches_analytical_bounds(n_users, units, compute, transfer):
    """The simulated makespan must sit between the work-conservation lower
    bound and the fully-serialized upper bound — and the analytical
    engine's approximation max(nma, cxl) must be within the same band."""
    jobs = decode_step_jobs(n_users, compute, units, transfer)
    outcome = DrexScheduler().simulate(jobs)
    total_units = n_users * units
    per_nma = -(-total_units // 8)
    lower = max(per_nma * compute, n_users * transfer)
    upper = total_units * compute + n_users * transfer
    assert lower - 1e-6 <= outcome.makespan_ns <= upper + 1e-6
    # Work conservation: busy time equals submitted work.
    assert sum(outcome.nma_busy_ns.values()) == pytest.approx(
        total_units * compute, rel=1e-9)
    assert outcome.cxl_busy_ns == pytest.approx(n_users * transfer, rel=1e-9)
