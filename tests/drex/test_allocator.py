"""Allocator invariants: no double-booking, capacity limits, chaining."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.drex.allocator import CapacityError, DrexAllocator
from repro.drex.geometry import DrexGeometry
from repro.drex.layout import rows_per_group

#: Small geometry so capacity errors are reachable in tests.
SMALL = DrexGeometry(n_packages=2, channels_per_package=2,
                     banks_per_channel=4, capacity_bytes=2 * 4 * 2 * 4 * 2048)
# rows_per_bank = capacity / (16 banks * 2048) = 4 rows/bank.


def test_small_geometry_sanity():
    assert SMALL.rows_per_bank == 4
    assert SMALL.keys_per_key_block_group == 256


class TestAppend:
    def test_single_group_allocation(self):
        alloc = DrexAllocator()
        chain = alloc.append_keys(uid=0, layer=0, kv_head=0, n_keys=100,
                                  head_dim=64)
        assert len(chain) == 1
        assert chain[0].n_keys == 100
        assert len(chain[0].groups) == 1
        assert alloc.bytes_used == rows_per_group(64) * 2048 * 8

    def test_grows_in_place_before_new_group(self):
        alloc = DrexAllocator()
        alloc.append_keys(0, 0, 0, 100, 64)
        chain = alloc.append_keys(0, 0, 0, 200, 64)
        assert len(chain[0].groups) == 1  # still inside the first group
        assert chain[0].n_keys == 300

    def test_new_group_at_next_bank_index(self):
        alloc = DrexAllocator()
        chain = alloc.append_keys(0, 0, 0, 1024 + 10, 64)
        banks = [g.bank_index for g in chain[0].groups]
        assert banks == [0, 1]

    def test_chains_to_next_package_when_slice_full(self):
        g = DrexGeometry(n_packages=2, channels_per_package=2,
                         banks_per_channel=2,
                         capacity_bytes=2 * 2 * 2 * 4096 * 2048)
        alloc = DrexAllocator(g)
        slice_cap = g.keys_per_key_block_group * g.banks_per_channel  # 512
        chain = alloc.append_keys(0, 0, 0, slice_cap + 1, head_dim=64)
        assert len(chain) == 2
        assert chain[0].n_keys == slice_cap
        assert chain[1].n_keys == 1
        assert chain[1].package == (chain[0].package + 1) % 2

    def test_heads_spread_across_packages(self):
        alloc = DrexAllocator()
        a = alloc.append_keys(0, 0, 0, 10, 64)[0]
        b = alloc.append_keys(0, 0, 1, 10, 64)[0]
        assert a.package != b.package

    def test_head_dim_mismatch_rejected(self):
        alloc = DrexAllocator()
        alloc.append_keys(0, 0, 0, 10, 64)
        with pytest.raises(ValueError):
            alloc.append_keys(0, 0, 0, 10, 128)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            DrexAllocator().append_keys(0, 0, 0, -1, 64)


class TestNoDoubleBooking:
    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 1),
                              st.integers(0, 1),
                              st.integers(1, 2000)),
                    min_size=1, max_size=12))
    @settings(max_examples=25, deadline=None)
    def test_rows_disjoint(self, requests):
        alloc = DrexAllocator()
        for uid, layer, head, n in requests:
            alloc.append_keys(uid, layer, head, n, head_dim=64)
        # Collect (package, bank, row) spans from every group; must be
        # pairwise disjoint.
        seen = set()
        for partition in alloc.partitions.values():
            for chain in partition.slices.values():
                for s in chain:
                    for group in s.groups:
                        for row in range(group.row_start,
                                         group.row_start + group.rows_per_bank):
                            key = (s.package, group.bank_index, row)
                            assert key not in seen
                            seen.add(key)


class TestCapacity:
    def test_capacity_error(self):
        alloc = DrexAllocator(SMALL)
        # Each group of head_dim=64 needs 17 rows/bank but banks have 4.
        with pytest.raises(CapacityError):
            alloc.append_keys(0, 0, 0, 1, head_dim=64)

    def test_free_user_reclaims(self):
        alloc = DrexAllocator()
        alloc.append_keys(0, 0, 0, 5000, 64)
        used = alloc.bytes_used
        assert used > 0
        freed = alloc.free_user(0)
        assert freed == used
        assert alloc.bytes_used == 0
        assert alloc.free_user(0) == 0  # idempotent

    def test_free_keeps_other_users(self):
        alloc = DrexAllocator()
        alloc.append_keys(0, 0, 0, 2000, 64)
        alloc.append_keys(1, 0, 0, 2000, 64)
        used_two = alloc.bytes_used
        alloc.free_user(0)
        assert 0 < alloc.bytes_used < used_two
        # User 1's data still allocatable / extendable.
        alloc.append_keys(1, 0, 0, 100, 64)

    def test_utilization(self):
        alloc = DrexAllocator()
        assert alloc.utilization() == 0.0
        alloc.append_keys(0, 0, 0, 1024, 64)
        assert 0.0 < alloc.utilization() < 1.0


#: Geometry sized so head_dim=64 groups (17 rows) tile each bank exactly
#: four times: the device fills to utilization == 1.0 with no slack.
EXACT = DrexGeometry(n_packages=2, channels_per_package=2,
                     banks_per_channel=4,
                     capacity_bytes=2 * 2 * 4 * (4 * 17) * 2048)


class TestChurn:
    def test_capacity_error_exactly_at_capacity(self):
        """Filling every row succeeds; the first key past the last full
        group raises; freeing reclaims the space for reuse."""
        alloc = DrexAllocator(EXACT)
        rows = rows_per_group(64, EXACT)
        groups_per_bank = EXACT.rows_per_bank // rows
        total_keys = (EXACT.n_packages * EXACT.banks_per_channel
                      * groups_per_bank * EXACT.keys_per_key_block_group)
        alloc.append_keys(0, 0, 0, total_keys, 64)
        assert alloc.utilization() == 1.0
        with pytest.raises(CapacityError):
            alloc.append_keys(0, 0, 0, 1, 64)
        assert alloc.free_user(0) == EXACT.capacity_bytes
        assert alloc.bytes_used == 0
        alloc.append_keys(1, 0, 0, total_keys, 64)  # space reclaimed
        assert alloc.utilization() == 1.0

    @given(st.lists(st.one_of(
        st.tuples(st.just("append"), st.integers(0, 2), st.integers(0, 1),
                  st.integers(0, 1), st.integers(1, 1500)),
        st.tuples(st.just("free"), st.integers(0, 2), st.just(0),
                  st.just(0), st.just(0))),
        min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_register_grow_free_churn(self, ops):
        """Random register/grow/free interleavings never over-allocate,
        account every byte to its user, and fully reclaim on drain."""
        alloc = DrexAllocator(EXACT)
        spent = {}
        for op, uid, layer, head, n in ops:
            if op == "append":
                before = alloc.bytes_used
                try:
                    alloc.append_keys(uid, layer, head, n, head_dim=64)
                except CapacityError:
                    pass  # partial allocations still accrue to the user
                spent[uid] = spent.get(uid, 0) + alloc.bytes_used - before
            else:
                freed = alloc.free_user(uid)
                assert freed == spent.pop(uid, 0)
            assert 0.0 <= alloc.utilization() <= 1.0
        for uid in list(spent):
            assert alloc.free_user(uid) == spent.pop(uid)
        assert alloc.bytes_used == 0
        # Post-churn the device is usable again from a clean slate.
        alloc.append_keys(99, 0, 0, 1, 64)
        assert alloc.bytes_used > 0
