"""The assembled DReX device: functional equivalence + bookkeeping."""

import numpy as np
import pytest

from repro.core.itq import ItqRotations, random_rotation
from repro.core.sparse import sparse_retrieve
from repro.drex.descriptors import RequestDescriptor
from repro.drex.device import DrexDevice
from tests.conftest import TINY


@pytest.fixture
def device():
    dev = DrexDevice(TINY.n_layers, TINY.n_kv_heads, TINY.n_q_heads,
                     TINY.head_dim, thresholds=TINY.head_dim // 2)
    dev.register_user(0)
    return dev


def _populate(device, rng, n=300, layer=0):
    keys = rng.normal(size=(TINY.n_kv_heads, n, TINY.head_dim))
    values = rng.normal(size=(TINY.n_kv_heads, n, TINY.head_dim))
    for head in range(TINY.n_kv_heads):
        device.write_kv(0, layer, head, keys[head], values[head])
    return keys, values


class TestEquivalence:
    @pytest.mark.parametrize("threshold", [0, 6, 8, 12, 16])
    def test_matches_reference_pipeline(self, rng, threshold):
        device = DrexDevice(TINY.n_layers, TINY.n_kv_heads, TINY.n_q_heads,
                            TINY.head_dim, thresholds=threshold)
        device.register_user(0)
        keys, values = _populate(device, rng)
        queries = rng.normal(size=(TINY.n_q_heads, TINY.head_dim))
        response = device.execute(RequestDescriptor(uid=0, layer=0,
                                                    queries=queries, top_k=17))
        group = TINY.gqa_group_size
        for h in range(TINY.n_q_heads):
            kv_head = h // group
            ref = sparse_retrieve(queries[h], keys[kv_head],
                                  threshold=threshold, k=17)
            np.testing.assert_array_equal(response.heads[h].indices,
                                          ref.indices)
            np.testing.assert_allclose(response.heads[h].scores, ref.scores)
            np.testing.assert_allclose(response.heads[h].values,
                                       values[kv_head][ref.indices])

    def test_matches_reference_with_itq(self, rng):
        rotations = ItqRotations(TINY.n_layers, TINY.n_kv_heads, TINY.head_dim)
        for layer in range(TINY.n_layers):
            for head in range(TINY.n_kv_heads):
                rotations.set(layer, head,
                              random_rotation(TINY.head_dim,
                                              seed=layer * 7 + head))
        device = DrexDevice(TINY.n_layers, TINY.n_kv_heads, TINY.n_q_heads,
                            TINY.head_dim, thresholds=9, rotations=rotations)
        device.register_user(0)
        keys, _ = _populate(device, rng, layer=1)
        queries = rng.normal(size=(TINY.n_q_heads, TINY.head_dim))
        response = device.execute(RequestDescriptor(uid=0, layer=1,
                                                    queries=queries, top_k=9))
        for h in range(TINY.n_q_heads):
            kv_head = h // TINY.gqa_group_size
            ref = sparse_retrieve(queries[h], keys[kv_head], threshold=9, k=9,
                                  rotation=rotations.get(1, kv_head))
            np.testing.assert_array_equal(response.heads[h].indices,
                                          ref.indices)

    def test_incremental_writes_match_bulk(self, rng):
        """Appending in odd-sized chunks must not change results."""
        bulk = DrexDevice(TINY.n_layers, TINY.n_kv_heads, TINY.n_q_heads,
                          TINY.head_dim, thresholds=6)
        inc = DrexDevice(TINY.n_layers, TINY.n_kv_heads, TINY.n_q_heads,
                         TINY.head_dim, thresholds=6)
        bulk.register_user(0)
        inc.register_user(0)
        keys = rng.normal(size=(TINY.n_kv_heads, 200, TINY.head_dim))
        values = rng.normal(size=(TINY.n_kv_heads, 200, TINY.head_dim))
        for head in range(TINY.n_kv_heads):
            bulk.write_kv(0, 0, head, keys[head], values[head])
            for start in range(0, 200, 37):
                inc.write_kv(0, 0, head, keys[head, start : start + 37],
                             values[head, start : start + 37])
        queries = rng.normal(size=(TINY.n_q_heads, TINY.head_dim))
        request = RequestDescriptor(uid=0, layer=0, queries=queries, top_k=11)
        a = bulk.execute(request)
        b = inc.execute(RequestDescriptor(uid=0, layer=0, queries=queries,
                                          top_k=11))
        for h in range(TINY.n_q_heads):
            np.testing.assert_array_equal(a.heads[h].indices,
                                          b.heads[h].indices)


class TestBookkeeping:
    def test_empty_store_returns_empty_heads(self, device, rng):
        queries = rng.normal(size=(TINY.n_q_heads, TINY.head_dim))
        response = device.execute(RequestDescriptor(uid=0, layer=2,
                                                    queries=queries))
        assert all(h.indices.size == 0 for h in response.heads)

    def test_context_length_tracking(self, device, rng):
        assert device.context_length(0, 0, 0) == 0
        _populate(device, rng, n=150)
        assert device.context_length(0, 0, 0) == 150

    def test_latency_attached(self, device, rng):
        _populate(device, rng)
        queries = rng.normal(size=(TINY.n_q_heads, TINY.head_dim))
        response = device.execute(RequestDescriptor(uid=0, layer=0,
                                                    queries=queries, top_k=5))
        assert response.latency is not None
        assert response.latency.total_ns > 0
        assert response.latency.score_ns >= 0

    def test_evict_user_frees_everything(self, device, rng):
        _populate(device, rng)
        assert device.allocator.bytes_used > 0
        device.evict_user(0)
        assert device.allocator.bytes_used == 0
        assert device.context_length(0, 0, 0) == 0

    def test_write_validation(self, device, rng):
        with pytest.raises(ValueError):
            device.write_kv(0, 0, 0, rng.normal(size=(5, TINY.head_dim)),
                            rng.normal(size=(4, TINY.head_dim)))
        with pytest.raises(ValueError):
            device.write_kv(0, 0, 0, rng.normal(size=(5, 3)),
                            rng.normal(size=(5, 3)))

    def test_query_shape_validation(self, device, rng):
        _populate(device, rng, n=50)
        with pytest.raises(ValueError):
            device.execute(RequestDescriptor(
                uid=0, layer=0,
                queries=rng.normal(size=(TINY.n_q_heads + 1, TINY.head_dim))))

    def test_group_limit(self, device, rng):
        _populate(device, rng, n=50)
        # 8 tokens x group 2 = 16 queries: at the PFU limit -> fine.
        ok = rng.normal(size=(TINY.n_q_heads, 8, TINY.head_dim))
        device.execute(RequestDescriptor(uid=0, layer=0, queries=ok))
        too_many = rng.normal(size=(TINY.n_q_heads, 9, TINY.head_dim))
        with pytest.raises(ValueError):
            device.execute(RequestDescriptor(uid=0, layer=0,
                                             queries=too_many))
