"""Shared fixtures for the test suite.

Tests use *untrained* miniature models wherever possible: the functional
properties under test (equivalences, invariants, layouts) do not depend on
weight quality, and training is reserved for the benchmark suite.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.llm.config import ModelConfig
from repro.llm.model import Transformer


#: A deliberately tiny config so full-sequence tests stay fast.
TINY = ModelConfig(
    name="tiny-test",
    vocab_size=64,
    n_layers=2,
    n_q_heads=4,
    n_kv_heads=2,
    head_dim=8,
    d_ff=32,
    qk_bias=True,
)

#: Same architecture without biases (exercises both code paths).
TINY_NOBIAS = ModelConfig(
    name="tiny-test-nobias",
    vocab_size=64,
    n_layers=2,
    n_q_heads=4,
    n_kv_heads=2,
    head_dim=8,
    d_ff=32,
    qk_bias=False,
)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_config() -> ModelConfig:
    return TINY


@pytest.fixture
def tiny_model() -> Transformer:
    return Transformer(TINY, seed=7)


@pytest.fixture
def tiny_tokens(rng) -> np.ndarray:
    return rng.integers(0, TINY.vocab_size, size=96)
