"""Shared fixtures for the test suite.

Tests use *untrained* miniature models wherever possible: the functional
properties under test (equivalences, invariants, layouts) do not depend on
weight quality, and training is reserved for the benchmark suite.
"""

from __future__ import annotations

import signal
import threading

import numpy as np
import pytest

from repro.llm.config import ModelConfig
from repro.llm.model import Transformer


def pytest_addoption(parser):
    parser.addini(
        "test_timeout_s",
        "per-test wall-clock limit in seconds (SIGALRM; 0 disables)",
        default="120")
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="rewrite checked-in golden files (e.g. the serve span tree) "
             "instead of comparing against them")


@pytest.fixture
def update_golden(request) -> bool:
    return bool(request.config.getoption("--update-golden"))


@pytest.fixture(autouse=True)
def _test_timeout(request):
    """Abort any test that hangs (e.g. a retry loop that never degrades).

    A conftest-level stand-in for pytest-timeout, which is not a
    dependency: arm a real-time alarm around each test and raise inside
    it when the limit is hit.  Skipped where SIGALRM cannot work (no
    SIGALRM on the platform, or a non-main test thread).
    """
    limit = float(request.config.getini("test_timeout_s") or 0)
    if limit <= 0 or not hasattr(signal, "SIGALRM") \
            or threading.current_thread() is not threading.main_thread():
        yield
        return

    def _on_alarm(signum, frame):
        raise TimeoutError(
            f"test exceeded the {limit:.0f}s wall-clock limit "
            f"(test_timeout_s in pyproject.toml)")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, limit)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


#: A deliberately tiny config so full-sequence tests stay fast.
TINY = ModelConfig(
    name="tiny-test",
    vocab_size=64,
    n_layers=2,
    n_q_heads=4,
    n_kv_heads=2,
    head_dim=8,
    d_ff=32,
    qk_bias=True,
)

#: Same architecture without biases (exercises both code paths).
TINY_NOBIAS = ModelConfig(
    name="tiny-test-nobias",
    vocab_size=64,
    n_layers=2,
    n_q_heads=4,
    n_kv_heads=2,
    head_dim=8,
    d_ff=32,
    qk_bias=False,
)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_config() -> ModelConfig:
    return TINY


@pytest.fixture
def tiny_model() -> Transformer:
    return Transformer(TINY, seed=7)


@pytest.fixture
def tiny_tokens(rng) -> np.ndarray:
    return rng.integers(0, TINY.vocab_size, size=96)
