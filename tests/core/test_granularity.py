"""Per-Q-head threshold granularity (the paper's rejected design, §5.1)."""

import numpy as np
import pytest

from repro.core.config import LongSightConfig
from repro.core.hybrid import LongSightAttention
from repro.core.metrics import FilterStats
from repro.core.tuning import tune_thresholds
from repro.llm.model import Transformer
from repro.llm.perplexity import perplexity
from tests.conftest import TINY


@pytest.fixture(scope="module")
def setup():
    model = Transformer(TINY, seed=3)
    tokens = np.random.default_rng(8).integers(0, TINY.vocab_size, size=96)
    return model, tokens


def test_threshold_for_q_head_resolution():
    t = np.arange(8, dtype=float).reshape(2, 4)  # (layers, q_heads)
    config = LongSightConfig(thresholds=t, per_q_head_thresholds=True)
    assert config.threshold_for(1, kv_head=0, q_head=3) == 7.0
    with pytest.raises(ValueError):
        config.threshold_for(0, kv_head=0)  # q_head required


def test_uniform_thresholds_match_across_granularity(setup):
    """A constant threshold must behave identically at either granularity."""
    model, tokens = setup
    kv = LongSightConfig(window=8, n_sink=2, top_k=16, thresholds=4)
    qh = LongSightConfig(window=8, n_sink=2, top_k=16,
                         thresholds=np.full((TINY.n_layers, TINY.n_q_heads),
                                            4.0),
                         per_q_head_thresholds=True)
    a = model.forward_full(tokens, backend=LongSightAttention(kv))
    b = model.forward_full(tokens, backend=LongSightAttention(qh))
    np.testing.assert_array_equal(a, b)


def test_per_q_head_thresholds_act_independently(setup):
    model, tokens = setup
    thresholds = np.zeros((TINY.n_layers, TINY.n_q_heads))
    thresholds[0, 1] = TINY.head_dim  # choke query head 1 only
    config = LongSightConfig(window=8, n_sink=2, top_k=64,
                             thresholds=thresholds,
                             per_q_head_thresholds=True)
    stats = FilterStats(TINY.n_layers, TINY.n_q_heads)
    model.forward_full(tokens, backend=LongSightAttention(config,
                                                          stats=stats))
    rates = stats.passed / np.maximum(stats.candidates, 1)
    assert rates[0, 1] < 0.2
    assert rates[0, 0] == 1.0  # sibling sharing the same KV head unaffected


def test_tuning_at_q_head_granularity(setup):
    model, tokens = setup
    dense = perplexity(model, tokens)
    config = LongSightConfig(window=8, n_sink=2, top_k=8)
    result = tune_thresholds(model, tokens, config, dense,
                             max_increase=0.10, step=2, max_iterations=4,
                             granularity="q_head")
    assert result.thresholds.shape == (TINY.n_layers, TINY.n_q_heads)


def test_bad_granularity_rejected(setup):
    model, tokens = setup
    with pytest.raises(ValueError):
        tune_thresholds(model, tokens, LongSightConfig(), 1.0,
                        granularity="nope")
