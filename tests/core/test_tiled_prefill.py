"""Tiled prefill equivalence: streaming top-k merge == monolithic path.

The IO-aware tiled prefill (``LongSightConfig.prefill_tile > 0``) streams
keys/values/signs tile by tile and merges per-row top-k pools, so it must
reproduce the monolithic fast path's *selections exactly* (the merge
preserves ascending column order, hence ``top_k_mask``'s lower-index
tie-break) and its *outputs to float round-off* (one final softmax over
the same finite terms).  The headline case drives a full 32k-token
blockwise prefill through real KV caches -- the configuration the
long-context acceptance criteria measure.
"""

import numpy as np
import pytest

from repro.core.config import LongSightConfig
from repro.core.hybrid import LongSightAttention
from repro.llm.config import ModelConfig
from repro.llm.kv_cache import KVCache


def _model_config(n_q_heads=2, n_kv_heads=1, head_dim=32):
    return ModelConfig(name="tiny-tiled", vocab_size=64, n_layers=1,
                       n_q_heads=n_q_heads, n_kv_heads=n_kv_heads,
                       head_dim=head_dim, d_ff=4 * n_q_heads * head_dim)


def _blockwise_prefill(att, mc, cfg, k, v, q, block):
    """Prefill through a real KV cache in ``block``-token query blocks,
    returning (outputs per block, selection_capture per block)."""
    n_ctx = k.shape[1]
    cache = KVCache(mc)
    cache.layers[0].reserve(n_ctx)
    att.prepare_cache(cache)
    outs, sels = [], []
    for t0 in range(0, n_ctx, block):
        t1 = min(t0 + block, n_ctx)
        cache.append(0, k[:, t0:t1], v[:, t0:t1])
        att.selection_capture = {}
        outs.append(att.forward_cached(0, q[:, t0:t1], cache))
        sels.append({h: m.copy()
                     for (_, h), m in att.selection_capture.items()})
        att.selection_capture = None
    return outs, sels


def test_tiled_prefill_equivalence_at_32k():
    """32k-context blockwise prefill: tiled == monolithic at 32k context.

    The tiled path runs the *full* 32k blockwise prefill through a real
    KV cache (incremental sign store included).  Running the monolithic
    path over every block too would move ~40 GB of (n_new, n_ctx) mask
    and score temporaries -- the exact cost tiling exists to avoid -- so
    the monolithic oracle instead checks probe blocks statelessly,
    including the final block whose context is the full 32768 tokens.
    Selections must be *exactly* equal; outputs agree to round-off.
    """
    n_ctx, block, tile = 32768, 1024, 2048
    # head_dim 64 = 8 packed bytes keeps the XOR+popcount kernel on its
    # uint64 word path; one head bounds the quadratic oracle's cost.
    mc = _model_config(n_q_heads=1, n_kv_heads=1, head_dim=64)
    # threshold 40/64 passes ~3% of candidates — a *selective* filter, the
    # regime the tiled pruning is designed for (and the bench measures)
    cfg = LongSightConfig(window=128, n_sink=16, top_k=64, thresholds=40)
    rng = np.random.default_rng(0)
    k = rng.normal(size=(mc.n_kv_heads, n_ctx, mc.head_dim)
                   ).astype(np.float32)
    v = rng.normal(size=(mc.n_kv_heads, n_ctx, mc.head_dim)
                   ).astype(np.float32)
    q = rng.normal(size=(mc.n_q_heads, n_ctx, mc.head_dim)
                   ).astype(np.float32)

    tiled = LongSightAttention(cfg.replace(prefill_tile=tile))
    out_t, sel_t = _blockwise_prefill(tiled, mc, cfg, k, v, q, block)
    n_blocks = n_ctx // block
    assert len(out_t) == n_blocks
    # every post-warmup block must actually retrieve sparsely
    assert all(any(m.any() for m in sel.values()) for sel in sel_t[1:])

    mono = LongSightAttention(cfg.replace(prefill_tile=0))
    for i in (n_blocks // 2, n_blocks - 1):  # last: full 32k context
        t0, t1 = i * block, (i + 1) * block
        mono.selection_capture = {}
        out_m = mono.forward(0, q[:, t0:t1], k[:, :t1], v[:, :t1])
        sel_m = {h: m for (_, h), m in mono.selection_capture.items()}
        mono.selection_capture = None
        assert set(sel_m) == set(sel_t[i])
        for h in sel_m:
            assert np.array_equal(sel_m[h], sel_t[i][h]), \
                f"block {i} head {h}: selections diverged"
        np.testing.assert_allclose(out_m, out_t[i], atol=1e-10,
                                   err_msg=f"block {i}")


@pytest.mark.parametrize("tile,block", [(256, 512), (512, 384), (1000, 700)])
def test_tiled_prefill_equivalence_small_geometries(tile, block):
    """Ragged tiles/blocks (tile < block, non-power-of-two) stay exact."""
    n_ctx = 4096
    mc = _model_config(n_q_heads=4, n_kv_heads=2, head_dim=16)
    cfg = LongSightConfig(window=48, n_sink=8, top_k=32, thresholds=6)
    rng = np.random.default_rng(42)
    k = rng.normal(size=(2, n_ctx, 16)).astype(np.float32)
    v = rng.normal(size=(2, n_ctx, 16)).astype(np.float32)
    q = rng.normal(size=(4, n_ctx, 16))

    mono = LongSightAttention(cfg.replace(prefill_tile=0))
    tiled = LongSightAttention(cfg.replace(prefill_tile=tile))
    out_m, sel_m = _blockwise_prefill(mono, mc, cfg, k, v, q, block)
    out_t, sel_t = _blockwise_prefill(tiled, mc, cfg, k, v, q, block)
    for sm, st in zip(sel_m, sel_t):
        for h in sm:
            assert np.array_equal(sm[h], st[h])
    for om, ot in zip(out_m, out_t):
        np.testing.assert_allclose(om, ot, atol=1e-10)


def test_tiled_dispatch_threshold():
    """Query blocks at or below the tile take the monolithic path; the
    stateless entries agree either way."""
    mc = _model_config(n_q_heads=2, n_kv_heads=1, head_dim=16)
    cfg = LongSightConfig(window=32, n_sink=4, top_k=16, thresholds=4,
                          prefill_tile=512)
    rng = np.random.default_rng(7)
    k = rng.normal(size=(1, 512, 16))
    v = rng.normal(size=(1, 512, 16))
    q = rng.normal(size=(2, 512, 16))
    att = LongSightAttention(cfg)
    mono = LongSightAttention(cfg.replace(prefill_tile=0))
    np.testing.assert_allclose(att.forward(0, q, k, v),
                               mono.forward(0, q, k, v), atol=1e-10)
