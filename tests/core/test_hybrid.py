"""Hybrid attention backend: dense-equivalence cases, masks, stats."""

import numpy as np
import pytest

from repro.core.config import LongSightConfig
from repro.core.hybrid import LongSightAttention, SlidingWindowAttention, \
    _region_masks
from repro.core.itq import fit_itq
from repro.core.metrics import FilterStats
from repro.llm.model import DenseBackend, Transformer
from tests.conftest import TINY


@pytest.fixture
def model():
    return Transformer(TINY, seed=3)


@pytest.fixture
def tokens(rng):
    return rng.integers(0, TINY.vocab_size, size=80)


class TestRegionMasks:
    def test_partition_of_causal(self):
        dense, sparse = _region_masks(np.arange(20, 25), 25, n_sink=3,
                                      window=4)
        causal = np.arange(25)[None, :] <= np.arange(20, 25)[:, None]
        assert not (dense & sparse).any()
        np.testing.assert_array_equal(dense | sparse, causal)

    def test_window_includes_self(self):
        dense, _ = _region_masks(np.array([10]), 11, n_sink=0, window=1)
        assert dense[0, 10]
        assert dense[0].sum() == 1

    def test_sink_region(self):
        dense, _ = _region_masks(np.array([20]), 21, n_sink=3, window=2)
        assert dense[0, :3].all()
        assert dense[0, 19:].all()
        assert not dense[0, 5]


class TestDenseEquivalence:
    def test_window_covers_context(self, model, tokens):
        dense = model.forward_full(tokens)
        config = LongSightConfig(window=len(tokens) + 1, n_sink=0, top_k=0)
        hybrid = model.forward_full(tokens,
                                    backend=LongSightAttention(config))
        np.testing.assert_array_equal(dense, hybrid)

    def test_threshold_zero_full_k(self, model, tokens):
        dense = model.forward_full(tokens)
        config = LongSightConfig(window=5, n_sink=2, top_k=len(tokens),
                                 thresholds=0)
        hybrid = model.forward_full(tokens,
                                    backend=LongSightAttention(config))
        np.testing.assert_allclose(dense, hybrid, atol=1e-12)

    def test_itq_rotation_preserves_threshold_zero(self, model, tokens, rng):
        """With thresholds 0 ITQ must not change anything (scores are
        rotation-invariant and the filter passes everything)."""
        rotations = fit_itq(model, tokens[:32], n_iter=3)
        base = LongSightConfig(window=5, n_sink=2, top_k=len(tokens),
                               thresholds=0)
        plain = model.forward_full(tokens, backend=LongSightAttention(base))
        itq = model.forward_full(tokens, backend=LongSightAttention(
            base.replace(use_itq=True), rotations=rotations))
        np.testing.assert_allclose(plain, itq, atol=1e-12)


class TestFiltering:
    def test_k_zero_equals_sliding_window(self, model, tokens):
        config = LongSightConfig(window=8, n_sink=4, top_k=0)
        hybrid = model.forward_full(tokens, backend=LongSightAttention(config))
        window = model.forward_full(
            tokens, backend=SlidingWindowAttention(window=8, n_sink=4))
        np.testing.assert_allclose(hybrid, window, atol=1e-12)

    def test_stats_accumulate_consistently(self, model, tokens):
        stats = FilterStats(TINY.n_layers, TINY.n_kv_heads)
        config = LongSightConfig(window=8, n_sink=2, top_k=4,
                                 thresholds=TINY.head_dim // 2)
        model.forward_full(tokens, backend=LongSightAttention(config,
                                                              stats=stats))
        assert (stats.passed <= stats.candidates).all()
        assert (stats.retrieved <= stats.passed).all()
        assert stats.candidates.sum() > 0
        assert stats.filter_ratio >= 1.0

    def test_higher_threshold_retrieves_no_more(self, model, tokens):
        def run(th):
            stats = FilterStats(TINY.n_layers, TINY.n_kv_heads)
            config = LongSightConfig(window=8, n_sink=2, top_k=64,
                                     thresholds=th)
            model.forward_full(tokens,
                               backend=LongSightAttention(config, stats=stats))
            return stats.passed.sum()

        assert run(TINY.head_dim) <= run(TINY.head_dim // 2) <= run(0)

    def test_per_head_thresholds(self, model, tokens):
        thresholds = np.zeros((TINY.n_layers, TINY.n_kv_heads))
        thresholds[0, 0] = TINY.head_dim  # choke one head only
        stats = FilterStats(TINY.n_layers, TINY.n_kv_heads)
        config = LongSightConfig(window=8, n_sink=2, top_k=64,
                                 thresholds=thresholds)
        model.forward_full(tokens,
                           backend=LongSightAttention(config, stats=stats))
        rates = stats.passed / np.maximum(stats.candidates, 1)
        assert rates[0, 0] < 0.2
        assert rates[1, 0] == 1.0

    def test_requires_rotations_for_itq(self):
        with pytest.raises(ValueError):
            LongSightAttention(LongSightConfig(use_itq=True))


class TestSlidingWindow:
    def test_matches_dense_when_window_covers(self, model, tokens):
        dense = model.forward_full(tokens)
        sw = model.forward_full(
            tokens, backend=SlidingWindowAttention(window=len(tokens)))
        np.testing.assert_allclose(dense, sw, atol=1e-12)

    def test_ignores_middle_tokens(self, model, rng):
        """Perturbing a mid-context token (outside sinks+window) must not
        change the last logits under sliding-window attention."""
        tokens = rng.integers(0, TINY.vocab_size, size=60)
        backend = SlidingWindowAttention(window=8, n_sink=2)
        base = model.forward_full(tokens, backend=backend)
        mutated = tokens.copy()
        mutated[30] = (mutated[30] + 1) % TINY.vocab_size
        out = model.forward_full(mutated, backend=backend)
        np.testing.assert_allclose(base[-1], out[-1], atol=1e-12)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SlidingWindowAttention(window=0)


class TestConfig:
    def test_threshold_resolution(self):
        config = LongSightConfig(thresholds=np.array([[1.0, 2.0], [3.0, 4.0]]))
        assert config.threshold_for(1, 0) == 3.0
        assert LongSightConfig(thresholds=5).threshold_for(0, 1) == 5.0
        assert LongSightConfig(
            thresholds=np.array([7.0, 9.0])).threshold_for(3, 1) == 9.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LongSightConfig(window=0)
        with pytest.raises(ValueError):
            LongSightConfig(top_k=-1)
        with pytest.raises(ValueError):
            LongSightConfig(n_sink=-2)

    def test_replace(self):
        a = LongSightConfig(window=10)
        b = a.replace(top_k=5)
        assert b.window == 10 and b.top_k == 5 and a.top_k != 5
