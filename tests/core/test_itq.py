"""ITQ rotation learning: orthogonality, loss descent, dot preservation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.itq import (
    ItqRotations,
    fit_itq,
    learn_itq_rotation,
    quantization_loss,
    random_rotation,
)
from repro.llm.model import Transformer
from tests.conftest import TINY


def clustered_sample(rng, n=300, d=16, offset=2.0):
    """A shifted Gaussian: the kind of clustered distribution ITQ fixes."""
    return rng.normal(size=(n, d)) + offset


class TestRandomRotation:
    @given(st.integers(min_value=2, max_value=24))
    @settings(max_examples=10, deadline=None)
    def test_orthogonal(self, d):
        r = random_rotation(d, seed=1)
        np.testing.assert_allclose(r @ r.T, np.eye(d), atol=1e-9)

    def test_deterministic(self):
        np.testing.assert_array_equal(random_rotation(8, 3),
                                      random_rotation(8, 3))


class TestLearnRotation:
    def test_result_is_orthogonal(self, rng):
        r = learn_itq_rotation(clustered_sample(rng), n_iter=20)
        np.testing.assert_allclose(r @ r.T, np.eye(16), atol=1e-9)

    def test_loss_improves_on_clustered_data(self, rng):
        v = clustered_sample(rng)
        learned = learn_itq_rotation(v, n_iter=40, seed=2)
        baseline = np.eye(16)
        assert quantization_loss(v, learned) < quantization_loss(v, baseline)

    def test_loss_non_increasing_across_iterations(self, rng):
        v = clustered_sample(rng, n=200)
        losses = [quantization_loss(v, learn_itq_rotation(v, n_iter=i, seed=7))
                  for i in (1, 5, 15, 40)]
        for earlier, later in zip(losses, losses[1:]):
            assert later <= earlier + 1e-9

    def test_rebalances_sign_bits(self, rng):
        """On a shifted cloud most raw signs are positive; the learned
        rotation must spread them toward 50/50 — the property SCF needs."""
        v = clustered_sample(rng, n=500, offset=1.5)
        raw_balance = np.abs((v >= 0).mean(axis=0) - 0.5).mean()
        r = learn_itq_rotation(v, n_iter=40, seed=0)
        rotated_balance = np.abs(((v @ r) >= 0).mean(axis=0) - 0.5).mean()
        assert rotated_balance < raw_balance

    def test_preserves_dot_products(self, rng):
        v = clustered_sample(rng)
        r = learn_itq_rotation(v, n_iter=10)
        q, k = rng.normal(size=(3, 16)), rng.normal(size=(5, 16))
        np.testing.assert_allclose((q @ r) @ (k @ r).T, q @ k.T, atol=1e-9)

    def test_rejects_bad_shape(self, rng):
        with pytest.raises(ValueError):
            learn_itq_rotation(rng.normal(size=(10,)))


class TestRotationBank:
    def test_identity_default(self, rng):
        bank = ItqRotations(2, 2, 8)
        x = rng.normal(size=(4, 8))
        np.testing.assert_array_equal(bank.apply(1, 0, x), x)

    def test_set_get_apply(self, rng):
        bank = ItqRotations(2, 2, 8)
        r = random_rotation(8, 5)
        bank.set(1, 1, r)
        np.testing.assert_array_equal(bank.get(1, 1), r)
        x = rng.normal(size=(3, 8))
        np.testing.assert_allclose(bank.apply(1, 1, x), x @ r)
        # Other slots stay identity.
        np.testing.assert_array_equal(bank.apply(0, 1, x), x)

    def test_shape_validation(self):
        bank = ItqRotations(1, 1, 8)
        with pytest.raises(ValueError):
            bank.set(0, 0, np.eye(4))


class TestFitItq:
    def test_fits_all_heads_orthogonally(self, rng):
        model = Transformer(TINY, seed=9)
        tokens = rng.integers(0, TINY.vocab_size, size=64)
        bank = fit_itq(model, tokens, n_iter=5)
        assert bank.matrices.shape == (TINY.n_layers, TINY.n_kv_heads,
                                       TINY.head_dim, TINY.head_dim)
        for layer in range(TINY.n_layers):
            for head in range(TINY.n_kv_heads):
                r = bank.get(layer, head)
                np.testing.assert_allclose(r @ r.T, np.eye(TINY.head_dim),
                                           atol=1e-9)
                # Must not be the identity (something was learned).
                assert not np.allclose(r, np.eye(TINY.head_dim))
