"""Hyper-parameter tuning loop tests (small model, short streams)."""

import numpy as np
import pytest

from repro.core.config import LongSightConfig
from repro.core.tuning import (
    evaluate,
    meets_quality_target,
    tune_thresholds,
    tune_top_k,
)
from repro.llm.model import Transformer
from repro.llm.perplexity import perplexity
from tests.conftest import TINY


@pytest.fixture(scope="module")
def setup():
    model = Transformer(TINY, seed=3)
    rng = np.random.default_rng(8)
    tokens = rng.integers(0, TINY.vocab_size, size=96)
    dense = perplexity(model, tokens)
    return model, tokens, dense


def test_evaluate_returns_ppl_and_stats(setup):
    model, tokens, _ = setup
    config = LongSightConfig(window=8, n_sink=2, top_k=8, thresholds=4)
    ppl, stats = evaluate(model, tokens, config)
    assert ppl > 1.0
    assert stats.candidates.sum() > 0


def test_tune_top_k_returns_candidate(setup):
    model, tokens, dense = setup
    config = LongSightConfig(window=8, n_sink=2, top_k=64)
    k = tune_top_k(model, tokens, config, dense, max_increase=0.5,
                   candidates=[64, 32, 16])
    assert k in (64, 32, 16)
    # A generous budget should allow a small k.
    k_loose = tune_top_k(model, tokens, config, dense, max_increase=10.0,
                         candidates=[64, 16])
    assert k_loose == 16


def test_tune_top_k_falls_back_to_largest(setup):
    model, tokens, dense = setup
    config = LongSightConfig(window=2, n_sink=0, top_k=4)
    k = tune_top_k(model, tokens, config, dense, max_increase=-1.0,
                   candidates=[8, 4])
    assert k == 8  # impossible budget -> largest candidate


def test_tune_thresholds_respects_budget(setup):
    model, tokens, dense = setup
    config = LongSightConfig(window=8, n_sink=2, top_k=8)
    result = tune_thresholds(model, tokens, config, dense,
                             max_increase=0.10, step=2, max_iterations=6)
    assert result.thresholds.shape == (TINY.n_layers, TINY.n_kv_heads)
    assert meets_quality_target(result.perplexity, dense, 0.10)
    assert result.filter_ratio >= 1.0  # k << N, so filtering always saves
    assert 1 <= result.iterations <= 6
    assert len(result.history) == result.iterations


def test_tune_thresholds_progress_monotone(setup):
    """Each accepted step raises exactly one threshold by `step`."""
    model, tokens, dense = setup
    config = LongSightConfig(window=8, n_sink=2, top_k=96)
    result = tune_thresholds(model, tokens, config, dense,
                             max_increase=10.0, step=4, max_iterations=5)
    total = result.thresholds.sum()
    assert total == 4 * (result.iterations - 1) or total <= 4 * result.iterations


def test_tune_thresholds_zero_iterations_budget(setup):
    """Even an unfiltered config over budget returns a (flagged) result."""
    model, tokens, dense = setup
    config = LongSightConfig(window=2, n_sink=0, top_k=1)
    result = tune_thresholds(model, tokens, config, dense,
                             max_increase=-0.5, step=2, max_iterations=3)
    assert (result.thresholds == 0).all()


def test_meets_quality_target():
    assert meets_quality_target(10.4, 10.0, 0.05)
    assert not meets_quality_target(10.6, 10.0, 0.05)
