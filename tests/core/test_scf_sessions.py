"""Property tests for the session-batched packed concordance kernel.

``concordance_packed_sessions`` must be *bit-identical*, per session, to
looping :func:`concordance_packed_many` over the sessions -- for any
ragged mix of context lengths, any head count, and any head dimension
(including dims that do not fill a whole packed byte).  Hypothesis owns
the geometry; every case checks all sessions over their full valid
column range, plus that the padded tail beyond a session's length is
sliced off by callers (the contract documents it as unspecified).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scf import (SignScratch, concordance_packed_many,
                            concordance_packed_sessions, pack_signs)


def _session_stack(rng, n_sessions, n_kv_heads, group, n_q, lengths, d):
    """Random packed query slabs + ragged per-session key stores."""
    q_packed = pack_signs(
        rng.normal(size=(n_sessions, n_kv_heads, group, n_q, d)))
    key_signs = [pack_signs(rng.normal(size=(n_kv_heads, n_ctx, d)))
                 for n_ctx in lengths]
    return q_packed, key_signs


@given(n_sessions=st.integers(min_value=1, max_value=5),
       n_kv_heads=st.integers(min_value=1, max_value=3),
       group=st.integers(min_value=1, max_value=4),
       d=st.sampled_from([8, 17, 64, 96, 128]),
       seed=st.integers(min_value=0, max_value=10_000),
       data=st.data())
@settings(max_examples=40, deadline=None)
def test_batched_equals_per_session_loop(n_sessions, n_kv_heads, group, d,
                                         seed, data):
    lengths = data.draw(st.lists(st.integers(min_value=1, max_value=70),
                                 min_size=n_sessions, max_size=n_sessions),
                        label="ragged context lengths")
    rng = np.random.default_rng(seed)
    q_packed, key_signs = _session_stack(rng, n_sessions, n_kv_heads,
                                         group, 1, lengths, d)
    batched = concordance_packed_sessions(q_packed, key_signs, d)
    assert batched.shape == (n_sessions, n_kv_heads, group, 1, max(lengths))
    for i, ks in enumerate(key_signs):
        solo = concordance_packed_many(q_packed[i], ks[:, None], d)
        np.testing.assert_array_equal(batched[i][..., : lengths[i]], solo)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_scratch_reuse_does_not_change_results(seed):
    """One shared SignScratch across growing calls stays bit-identical
    to fresh allocation -- stale bytes from earlier (larger) borrows
    must never leak into a later session's valid columns."""
    rng = np.random.default_rng(seed)
    scratch = SignScratch()
    for lengths in ([33, 61, 7], [5, 2, 9], [64, 1, 40]):
        q_packed, key_signs = _session_stack(rng, 3, 2, 2, 1, lengths, 64)
        with_scratch = concordance_packed_sessions(q_packed, key_signs, 64,
                                                   scratch=scratch)
        fresh = concordance_packed_sessions(q_packed, key_signs, 64)
        for i, n_ctx in enumerate(lengths):
            np.testing.assert_array_equal(with_scratch[i][..., :n_ctx],
                                          fresh[i][..., :n_ctx])
    assert scratch.allocations <= 2  # geometric growth, no churn


def test_single_session_degenerates_to_many():
    rng = np.random.default_rng(0)
    q_packed, key_signs = _session_stack(rng, 1, 2, 4, 1, [50], 64)
    batched = concordance_packed_sessions(q_packed, key_signs, 64)
    solo = concordance_packed_many(q_packed[0], key_signs[0][:, None], 64)
    np.testing.assert_array_equal(batched[0], solo)


def test_session_count_mismatch_raises():
    rng = np.random.default_rng(1)
    q_packed, key_signs = _session_stack(rng, 2, 1, 1, 1, [10, 12], 32)
    try:
        concordance_packed_sessions(q_packed[:1], key_signs, 32)
    except ValueError as exc:
        assert "per session" in str(exc)
    else:  # pragma: no cover
        raise AssertionError("expected ValueError")
