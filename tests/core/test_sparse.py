"""The reference sparse retrieval pipeline (filter -> score -> rank)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.itq import random_rotation
from repro.core.scf import scf_filter
from repro.core.sparse import sparse_retrieve
from repro.core.topk import top_k_indices


def test_matches_brute_force(rng):
    q = rng.normal(size=16)
    keys = rng.normal(size=(50, 16))
    result = sparse_retrieve(q, keys, threshold=8, k=7)
    passed = scf_filter(q[None], keys, 8)[0]
    masked = np.where(passed, keys @ q, -np.inf)
    np.testing.assert_array_equal(result.indices, top_k_indices(masked, 7))
    np.testing.assert_allclose(result.scores, (keys @ q)[result.indices])
    assert result.n_candidates == 50
    assert result.n_passed == int(passed.sum())


def test_threshold_zero_is_pure_topk(rng):
    q = rng.normal(size=8)
    keys = rng.normal(size=(20, 8))
    result = sparse_retrieve(q, keys, threshold=0, k=5)
    np.testing.assert_array_equal(result.indices,
                                  np.argsort(-(keys @ q), kind="stable")[:5])
    assert result.n_passed == 20


def test_empty_keys(rng):
    result = sparse_retrieve(rng.normal(size=8), np.empty((0, 8)), 0, 5)
    assert result.n_retrieved == 0
    assert result.n_candidates == 0


def test_max_threshold_filters_all(rng):
    q = rng.normal(size=8)
    keys = -np.abs(rng.normal(size=(10, 8))) * np.sign(q)  # all signs flipped
    result = sparse_retrieve(q, keys, threshold=1, k=5)
    assert result.n_passed == 0
    assert result.n_retrieved == 0


def test_rotation_changes_filter_not_scores(rng):
    q = rng.normal(size=16) + 1.0
    keys = rng.normal(size=(40, 16)) + 1.0
    rot = random_rotation(16, seed=3)
    plain = sparse_retrieve(q, keys, threshold=9, k=40)
    rotated = sparse_retrieve(q, keys, threshold=9, k=40, rotation=rot)
    # Scores of commonly retrieved keys are identical (orthogonal rotation
    # never touches the scoring path).
    common = set(plain.indices) & set(rotated.indices)
    assert common
    for idx in common:
        assert np.isclose(keys[idx] @ q,
                          plain.scores[list(plain.indices).index(idx)])


def test_scores_descending(rng):
    result = sparse_retrieve(rng.normal(size=8), rng.normal(size=(30, 8)),
                             threshold=2, k=10)
    assert (np.diff(result.scores) <= 1e-12).all()


def test_shape_validation(rng):
    with pytest.raises(ValueError):
        sparse_retrieve(rng.normal(size=(2, 8)), rng.normal(size=(5, 8)), 0, 1)
    with pytest.raises(ValueError):
        sparse_retrieve(rng.normal(size=8), rng.normal(size=(5, 6)), 0, 1)


@given(st.integers(min_value=0, max_value=16),
       st.integers(min_value=0, max_value=30))
@settings(max_examples=30, deadline=None)
def test_invariants(threshold, k):
    rng = np.random.default_rng(42)
    q = rng.normal(size=16)
    keys = rng.normal(size=(25, 16))
    result = sparse_retrieve(q, keys, threshold=threshold, k=k)
    assert result.n_retrieved == min(k, result.n_passed)
    assert result.n_passed <= result.n_candidates
    assert len(set(result.indices.tolist())) == result.n_retrieved
