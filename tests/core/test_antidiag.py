"""Antidiagonal block-scoring backend: exactness anchor + recall envelope.

The backend is approximate by design, so the tests pin what *is* exact:

- the incremental :class:`BlockSummary` store equals the stateless
  summaries recomputed from raw keys, for any append pattern;
- with ``tau = 1.0``, an unbounded block budget, and block-aligned
  geometry the attended set is the full causal context, so the output
  equals dense attention to float round-off (the exactness anchor);
- selected sparse columns always lie inside the causal sparse region and
  respect the ``max_blocks`` budget (the documented recall envelope);
- cached (plain and paged) and stateless entry points agree.
"""

import numpy as np
import pytest

from repro.core.antidiag import (AntidiagonalAttention,
                                 block_summaries_from_keys)
from repro.core.config import LongSightConfig
from repro.core.hybrid import LongSightAttention, make_backend
from repro.core.metrics import FilterStats
from repro.llm.config import ModelConfig
from repro.llm.kv_cache import BlockSummary, KVCache
from repro.llm.ops import softmax
from repro.serve.paged_kv import PagedKVPool


def _dense_causal(q, k, v):
    """Full causal attention, the anchor oracle."""
    n_q_heads, n_new, head_dim = q.shape
    n_kv_heads, n_ctx, _ = k.shape
    group = n_q_heads // n_kv_heads
    scale = 1.0 / np.sqrt(head_dim)
    causal = (np.arange(n_ctx)[None, :]
              <= np.arange(n_ctx - n_new, n_ctx)[:, None])
    out = np.empty_like(q, dtype=float)
    for h in range(n_q_heads):
        scores = np.where(causal, (q[h] @ k[h // group].T) * scale, -np.inf)
        out[h] = softmax(scores, axis=-1) @ v[h // group]
    return out


def _qkv(rng, n_q_heads, n_kv_heads, n_new, n_ctx, head_dim):
    return (rng.normal(size=(n_q_heads, n_new, head_dim)),
            rng.normal(size=(n_kv_heads, n_ctx, head_dim)),
            rng.normal(size=(n_kv_heads, n_ctx, head_dim)))


# -- incremental summary store -----------------------------------------------


def test_block_summary_incremental_matches_stateless():
    rng = np.random.default_rng(0)
    store = BlockSummary(2, 16, block=8, stride=4)
    chunks, total = [], 0
    for n in (1, 5, 8, 3, 17, 2, 1):
        k = rng.normal(size=(2, n, 16)).astype(np.float32)
        store.update(k, total)
        chunks.append(k)
        total += n
        ref = block_summaries_from_keys(
            np.concatenate(chunks, axis=1), 8, 4)
        np.testing.assert_allclose(store.summaries, ref, atol=1e-5)
    assert len(store) == total
    assert store.summaries.shape == (2, -(-total // 8), 4, 16)


def test_block_summary_rejects_gaps():
    store = BlockSummary(1, 8, block=4, stride=2)
    store.update(np.zeros((1, 3, 8), dtype=np.float32), 0)
    with pytest.raises(ValueError):
        store.update(np.zeros((1, 1, 8), dtype=np.float32), 5)


def test_block_summary_validates_geometry():
    with pytest.raises(ValueError):
        BlockSummary(1, 8, block=6, stride=4)  # not a multiple


def test_config_validates_antidiag_fields():
    with pytest.raises(ValueError):
        LongSightConfig(antidiag_block=6, antidiag_stride=4)
    with pytest.raises(ValueError):
        LongSightConfig(antidiag_tau=0.0)
    with pytest.raises(ValueError):
        LongSightConfig(prefilter="nope")


# -- exactness anchor ---------------------------------------------------------


def test_tau_one_aligned_decode_equals_dense():
    """tau=1 + unbounded budget + aligned geometry == dense attention.

    Decode query at position 255 with window 64: the sparse frontier is
    p - window = 191, and 192 is a multiple of block=16, so the candidate
    blocks tile the sparse region exactly; tau=1.0 selects all of them.
    """
    rng = np.random.default_rng(1)
    cfg = LongSightConfig(window=64, n_sink=0, prefilter="antidiag",
                          antidiag_block=16, antidiag_stride=4,
                          antidiag_tau=1.0, antidiag_max_blocks=10 ** 6)
    q, k, v = _qkv(rng, 4, 2, 1, 256, 32)
    out = AntidiagonalAttention(cfg).forward(0, q, k, v)
    np.testing.assert_allclose(out, _dense_causal(q, k, v), atol=1e-12)


def test_tau_one_aligned_decode_equals_dense_with_sinks():
    rng = np.random.default_rng(2)
    # Sinks are attended densely; block 0's columns below n_sink are
    # excluded from sparse attention by the region mask, so alignment
    # only needs the window frontier: p - window + 1 = 120 - 55 = 64+1?
    # Use p=127, window=32 -> frontier 95, +1 = 96 = 12 * 8.
    cfg = LongSightConfig(window=32, n_sink=8, prefilter="antidiag",
                          antidiag_block=8, antidiag_stride=8,
                          antidiag_tau=1.0, antidiag_max_blocks=10 ** 6)
    q, k, v = _qkv(rng, 2, 2, 1, 128, 16)
    out = AntidiagonalAttention(cfg).forward(0, q, k, v)
    np.testing.assert_allclose(out, _dense_causal(q, k, v), atol=1e-12)


def test_short_context_is_pure_dense():
    """No sparse region: output equals the dense sliding-window anchor."""
    rng = np.random.default_rng(3)
    cfg = LongSightConfig(window=64, n_sink=4, prefilter="antidiag",
                          antidiag_block=8, antidiag_stride=4)
    q, k, v = _qkv(rng, 4, 2, 5, 40, 16)
    att = AntidiagonalAttention(cfg)
    np.testing.assert_allclose(att.forward(0, q, k, v),
                               _dense_causal(q, k, v), atol=1e-12)


# -- recall envelope ----------------------------------------------------------


def test_selection_stays_in_sparse_region_and_respects_budget():
    rng = np.random.default_rng(4)
    cfg = LongSightConfig(window=16, n_sink=4, prefilter="antidiag",
                          antidiag_block=8, antidiag_stride=4,
                          antidiag_tau=0.9, antidiag_max_blocks=3)
    q, k, v = _qkv(rng, 4, 2, 32, 256, 16)
    att = AntidiagonalAttention(cfg)
    att.selection_capture = {}
    att.forward(0, q, k, v)
    assert set(att.selection_capture) == {(0, h) for h in range(4)}
    q_positions = np.arange(256 - 32, 256)
    for sel in att.selection_capture.values():
        rows, cols = np.nonzero(sel)
        p = q_positions[rows]
        assert (cols >= cfg.n_sink).all()
        assert (cols <= p - cfg.window).all()
        # per-row budget: at most max_blocks full blocks
        per_row = sel.sum(axis=1)
        assert (per_row <= cfg.antidiag_max_blocks * cfg.antidiag_block).all()
        # tau=0.9 with a tight cap must actually prune something
        assert sel.sum() < (np.clip(q_positions - cfg.window - cfg.n_sink + 1,
                                    0, None)).sum()


def test_stats_and_metrics_recorded():
    rng = np.random.default_rng(5)
    stats = FilterStats(1, 2)
    cfg = LongSightConfig(window=16, n_sink=4, prefilter="antidiag",
                          antidiag_block=8, antidiag_stride=4)
    q, k, v = _qkv(rng, 4, 2, 8, 128, 16)
    AntidiagonalAttention(cfg, stats=stats).forward(0, q, k, v)
    assert stats.queries.sum() > 0
    assert stats.candidates.sum() > 0
    assert (stats.passed == stats.retrieved).all()
    assert stats.retrieved.sum() > 0


# -- cache integration --------------------------------------------------------


def _model_config():
    return ModelConfig(name="tiny-antidiag", vocab_size=64, n_layers=2,
                       n_q_heads=4, n_kv_heads=2, head_dim=16, d_ff=32)


def test_forward_cached_plain_paged_and_stateless_agree():
    rng = np.random.default_rng(6)
    mc = _model_config()
    cfg = LongSightConfig(window=16, n_sink=4, prefilter="antidiag",
                          antidiag_block=8, antidiag_stride=4)
    att = AntidiagonalAttention(cfg)
    plain = KVCache(mc)
    paged = PagedKVPool(mc, n_blocks=32, block_tokens=16).new_cache()
    att.prepare_cache(plain)
    att.prepare_cache(paged)
    assert plain.block_summary_enabled and paged.block_summary_enabled
    for n in (40, 17, 1, 1, 5):
        k = rng.normal(size=(2, n, 16)).astype(np.float32)
        v = rng.normal(size=(2, n, 16)).astype(np.float32)
        for layer in range(mc.n_layers):
            plain.append(layer, k, v)
            paged.append(layer, k, v)
    q = rng.normal(size=(4, 1, 16))
    out_plain = att.forward_cached(1, q, plain)
    out_paged = att.forward_cached(1, q, paged)
    out_free = att.forward(1, q, plain.layers[1].keys,
                           plain.layers[1].values)
    np.testing.assert_allclose(out_plain, out_paged, atol=1e-5)
    np.testing.assert_allclose(out_plain, out_free, atol=1e-5)


def test_forward_cached_without_summary_hook_falls_back():
    """Caches lacking enable_block_summary still work (on-the-fly sums)."""
    rng = np.random.default_rng(7)
    mc = _model_config()
    cfg = LongSightConfig(window=16, n_sink=4, prefilter="antidiag",
                          antidiag_block=8, antidiag_stride=4)
    att = AntidiagonalAttention(cfg)
    cache = KVCache(mc)  # prepare_cache never called
    for n in (50, 14):
        k = rng.normal(size=(2, n, 16)).astype(np.float32)
        v = rng.normal(size=(2, n, 16)).astype(np.float32)
        for layer in range(mc.n_layers):
            cache.append(layer, k, v)
    q = rng.normal(size=(4, 2, 16))
    out = att.forward_cached(0, q, cache)
    ref = att.forward(0, q, cache.layers[0].keys, cache.layers[0].values)
    np.testing.assert_allclose(out, ref, atol=1e-12)


def test_enable_block_summary_idempotent_and_rebuilds_on_new_geometry():
    rng = np.random.default_rng(8)
    mc = _model_config()
    cache = KVCache(mc)
    k = rng.normal(size=(2, 30, 16)).astype(np.float32)
    cache.append(0, k, k)
    cache.enable_block_summary(8, 4)
    first = cache.layers[0]._block_summary
    cache.enable_block_summary(8, 4)  # same geometry: no rebuild
    assert cache.layers[0]._block_summary is first
    cache.enable_block_summary(16, 4)  # new geometry: rebuilt from keys
    ref = block_summaries_from_keys(cache.layers[0].keys, 16, 4)
    np.testing.assert_allclose(cache.layers[0].block_summaries, ref,
                               atol=1e-5)


def test_free_drops_summaries():
    mc = _model_config()
    cache = KVCache(mc)
    cache.enable_block_summary(8, 4)
    cache.append(0, np.zeros((2, 10, 16), dtype=np.float32),
                 np.zeros((2, 10, 16), dtype=np.float32))
    cache.free()
    assert not cache.block_summary_enabled


# -- factory and protocol -----------------------------------------------------


def test_make_backend_dispatches_on_prefilter():
    scf = make_backend(LongSightConfig())
    assert isinstance(scf, LongSightAttention)
    anti = make_backend(LongSightConfig(prefilter="antidiag"))
    assert isinstance(anti, AntidiagonalAttention)
    # no batched-decode hook: the engine keeps antidiag sessions solo
    assert getattr(anti, "forward_cached_batch", None) is None


def test_dense_fallback_matches_geometry():
    cfg = LongSightConfig(window=32, n_sink=4, prefilter="antidiag")
    fb = AntidiagonalAttention(cfg).dense_fallback()
    assert fb.window == 32 and fb.n_sink == 4
