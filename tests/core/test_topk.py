"""Top-k selection: correctness, determinism, mask/index agreement."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.topk import top_k_indices, top_k_mask

scores_1d = hnp.arrays(
    np.float64, st.integers(min_value=0, max_value=40),
    elements=st.floats(min_value=-100, max_value=100, allow_nan=False))


class TestIndices:
    def test_simple(self):
        idx = top_k_indices(np.array([1.0, 5.0, 3.0, 4.0]), 2)
        np.testing.assert_array_equal(idx, [1, 3])

    def test_k_larger_than_n(self):
        idx = top_k_indices(np.array([2.0, 1.0]), 10)
        np.testing.assert_array_equal(idx, [0, 1])

    def test_ties_broken_by_index(self):
        idx = top_k_indices(np.array([5.0, 5.0, 5.0, 1.0]), 2)
        np.testing.assert_array_equal(idx, [0, 1])

    def test_neg_inf_never_selected(self):
        scores = np.array([-np.inf, 1.0, -np.inf, 0.5])
        idx = top_k_indices(scores, 4)
        np.testing.assert_array_equal(idx, [1, 3])

    def test_all_neg_inf(self):
        assert len(top_k_indices(np.full(5, -np.inf), 3)) == 0

    def test_k_zero(self):
        assert len(top_k_indices(np.arange(5.0), 0)) == 0

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            top_k_indices(np.zeros((2, 2)), 1)

    @given(scores_1d, st.integers(min_value=0, max_value=50))
    @settings(max_examples=40, deadline=None)
    def test_matches_sorted_reference(self, scores, k):
        idx = top_k_indices(scores, k)
        assert len(idx) == min(k, len(scores))
        # Scores sorted descending.
        sel = scores[idx]
        assert (np.diff(sel) <= 0).all()
        # Nothing outside the selection beats anything inside it.
        if len(idx) and len(scores) > len(idx):
            rest = np.delete(scores, idx)
            assert rest.max() <= sel.min() + 1e-12


class TestMask:
    def test_agrees_with_indices_per_row(self, rng):
        scores = rng.normal(size=(6, 30))
        scores[rng.random(size=scores.shape) < 0.3] = -np.inf
        mask = top_k_mask(scores, 5)
        for row in range(6):
            expected = np.zeros(30, dtype=bool)
            expected[top_k_indices(scores[row], 5)] = True
            np.testing.assert_array_equal(mask[row], expected)

    def test_k_zero_or_empty(self, rng):
        assert not top_k_mask(rng.normal(size=(3, 4)), 0).any()
        assert top_k_mask(np.empty((3, 0)), 5).shape == (3, 0)

    def test_k_covers_all_finite(self, rng):
        scores = rng.normal(size=(2, 6))
        scores[0, 3] = -np.inf
        mask = top_k_mask(scores, 6)
        assert mask.sum() == 11

    def test_at_most_k_per_row(self, rng):
        scores = rng.normal(size=(4, 50))
        assert (top_k_mask(scores, 7).sum(axis=1) == 7).all()
