"""Sign-Concordance Filtering: float path, packed path, invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.scf import (
    concordance,
    concordance_packed,
    pack_signs,
    scf_filter,
    scf_filter_packed,
    sign_bits,
    sign_pm1,
)

# Subnormals are excluded because sign-concordance treats zero as positive:
# a negative subnormal scaled by < 1 can underflow to -0.0 and legitimately
# flip its sign class, so scale invariance only holds over normal floats.
vec_elements = st.floats(min_value=-10, max_value=10, allow_nan=False,
                         allow_subnormal=False)


def vectors(n, d):
    return hnp.arrays(np.float64, (n, d), elements=vec_elements)


class TestSignBits:
    def test_zero_is_positive(self):
        assert sign_bits(np.array([0.0, -0.0, 1.0, -1.0])).tolist() == \
            [True, True, True, False]

    def test_pm1(self):
        np.testing.assert_array_equal(sign_pm1(np.array([2.0, -3.0, 0.0])),
                                      [1.0, -1.0, 1.0])


class TestConcordance:
    def test_identical_vectors_full_match(self, rng):
        x = rng.normal(size=(4, 16))
        np.testing.assert_array_equal(np.diag(concordance(x, x)), 16)

    def test_negated_vectors_zero_match(self, rng):
        x = rng.normal(size=(3, 12))
        assert (np.diag(concordance(x, -x)) == 0).all()

    def test_matches_brute_force(self, rng):
        q = rng.normal(size=(5, 10))
        k = rng.normal(size=(7, 10))
        expected = np.zeros((5, 7), dtype=np.int64)
        for i in range(5):
            for j in range(7):
                expected[i, j] = np.sum(sign_bits(q[i]) == sign_bits(k[j]))
        np.testing.assert_array_equal(concordance(q, k), expected)

    @given(vectors(3, 8), vectors(4, 8))
    @settings(max_examples=30, deadline=None)
    def test_symmetry_and_range(self, q, k):
        c = concordance(q, k)
        assert (0 <= c).all() and (c <= 8).all()
        np.testing.assert_array_equal(c, concordance(k, q).T)

    @given(vectors(2, 6), st.floats(min_value=0.1, max_value=50))
    @settings(max_examples=25, deadline=None)
    def test_positive_scale_invariance(self, x, scale):
        q, k = x[:1], x[1:]
        np.testing.assert_array_equal(concordance(q, k),
                                      concordance(q * scale, k))

    def test_dimension_mismatch(self, rng):
        with pytest.raises(ValueError):
            concordance(rng.normal(size=(2, 4)), rng.normal(size=(2, 6)))


class TestFilter:
    def test_threshold_zero_passes_all(self, rng):
        q, k = rng.normal(size=(2, 8)), rng.normal(size=(9, 8))
        assert scf_filter(q, k, 0).all()

    def test_threshold_d_requires_exact_signs(self, rng):
        q = rng.normal(size=(1, 8))
        k = np.concatenate([q * 3.0, -q])
        mask = scf_filter(q, k, 8)
        assert mask[0, 0] and not mask[0, 1]

    def test_monotone_in_threshold(self, rng):
        q, k = rng.normal(size=(3, 16)), rng.normal(size=(20, 16))
        previous = scf_filter(q, k, 0)
        for th in range(1, 17):
            current = scf_filter(q, k, th)
            assert (current <= previous).all()
            previous = current


class TestPackedPath:
    @given(vectors(3, 16), vectors(5, 16))
    @settings(max_examples=30, deadline=None)
    def test_packed_matches_float(self, q, k):
        np.testing.assert_array_equal(
            concordance(q, k),
            concordance_packed(pack_signs(q), pack_signs(k), 16))

    @pytest.mark.parametrize("d", [3, 8, 13, 16, 64, 100])
    def test_non_byte_aligned_dims(self, d, rng):
        q = rng.normal(size=(2, d))
        k = rng.normal(size=(4, d))
        np.testing.assert_array_equal(
            concordance(q, k),
            concordance_packed(pack_signs(q), pack_signs(k), d))

    def test_filter_packed_matches(self, rng):
        q = rng.normal(size=(2, 32))
        k = rng.normal(size=(10, 32))
        for th in (0, 10, 16, 25, 32):
            np.testing.assert_array_equal(
                scf_filter(q, k, th),
                scf_filter_packed(pack_signs(q), pack_signs(k), 32, th))

    def test_pack_shape(self, rng):
        packed = pack_signs(rng.normal(size=(5, 20)))
        assert packed.shape == (5, 3)  # ceil(20 / 8) bytes
        assert packed.dtype == np.uint8
