"""Filter-ratio accounting tests."""

import numpy as np
import pytest

from repro.core.metrics import FilterStats


def test_no_filtering_full_k_ratio():
    """All keys scored + all retrieved -> ratio 2N / (N + 2N) = 2/3... the
    definition: sparse still wins when k << N."""
    stats = FilterStats(1, 1)
    stats.update(0, 0, candidates=100, passed=100, retrieved=100)
    assert np.isclose(stats.filter_ratio, 200 / 300)


def test_paper_consistency_sparsity():
    """Section 5.4: 12.4x filter ratio ~= 91.9% sparsity."""
    stats = FilterStats(1, 1)
    # Construct pass/retrieve counts giving ratio ~12.4.
    stats.update(0, 0, candidates=12400, passed=1500, retrieved=250)
    assert np.isclose(stats.filter_ratio, 24800 / 2000)
    assert np.isclose(stats.sparsity, 1 - 2000 / 24800)


def test_empty_stats_ratio_one():
    stats = FilterStats(2, 2)
    assert stats.filter_ratio == 1.0
    assert stats.sparsity == 0.0
    assert stats.pass_rate == 1.0


def test_per_head_ratio_isolated():
    stats = FilterStats(2, 2)
    stats.update(0, 0, candidates=100, passed=10, retrieved=5)
    ratios = stats.per_head_filter_ratio
    assert ratios.shape == (2, 2)
    assert np.isclose(ratios[0, 0], 200 / 20)
    assert ratios[1, 1] == 1.0  # unused heads report neutral ratio


def test_validation():
    stats = FilterStats(1, 1)
    with pytest.raises(ValueError):
        stats.update(0, 0, candidates=5, passed=6, retrieved=0)
    with pytest.raises(ValueError):
        stats.update(0, 0, candidates=5, passed=2, retrieved=3)


def test_merge_and_reset():
    a = FilterStats(1, 2)
    b = FilterStats(1, 2)
    a.update(0, 0, candidates=10, passed=5, retrieved=2)
    b.update(0, 1, candidates=20, passed=4, retrieved=4)
    a.merge(b)
    assert a.candidates.sum() == 30
    assert a.passed[0, 1] == 4
    a.reset()
    assert a.candidates.sum() == 0


def test_merge_shape_mismatch():
    with pytest.raises(ValueError):
        FilterStats(1, 2).merge(FilterStats(2, 2))


def test_summary_keys():
    stats = FilterStats(1, 1)
    stats.update(0, 0, candidates=10, passed=5, retrieved=1)
    summary = stats.summary()
    assert set(summary) == {"filter_ratio", "sparsity", "pass_rate",
                            "candidates", "passed", "retrieved"}
    assert summary["candidates"] == 10


def test_pass_rate():
    stats = FilterStats(1, 1)
    stats.update(0, 0, candidates=100, passed=25, retrieved=10)
    assert np.isclose(stats.pass_rate, 0.25)
