"""Software sparse-attention baseline backends (Section 3.1 comparators)."""

import numpy as np
import pytest

from repro.core.baselines import BlockSparseAttention, LshAttention
from repro.core.metrics import FilterStats
from repro.llm.model import Transformer
from tests.conftest import TINY


@pytest.fixture(scope="module")
def model():
    return Transformer(TINY, seed=3)


@pytest.fixture(scope="module")
def tokens():
    return np.random.default_rng(4).integers(0, TINY.vocab_size, size=70)


class TestLsh:
    def test_runs_and_is_causal(self, model, tokens):
        backend = LshAttention(n_hashes=2, n_bits=3, window=4)
        base = model.forward_full(tokens, backend=backend)
        mutated = tokens.copy()
        mutated[-1] = (mutated[-1] + 1) % TINY.vocab_size
        out = model.forward_full(mutated, backend=backend)
        np.testing.assert_allclose(base[:-1], out[:-1], atol=1e-12)

    def test_deterministic_across_calls(self, model, tokens):
        backend = LshAttention(seed=5)
        a = model.forward_full(tokens, backend=backend)
        b = model.forward_full(tokens, backend=backend)
        np.testing.assert_array_equal(a, b)

    def test_more_hashes_higher_recall(self, model, tokens):
        def pass_rate(n_hashes):
            stats = FilterStats(TINY.n_layers, TINY.n_kv_heads)
            backend = LshAttention(n_hashes=n_hashes, n_bits=4, window=4,
                                   stats=stats)
            model.forward_full(tokens, backend=backend)
            return stats.pass_rate

        assert pass_rate(4) > pass_rate(1)

    def test_more_bits_higher_sparsity(self, model, tokens):
        def pass_rate(n_bits):
            stats = FilterStats(TINY.n_layers, TINY.n_kv_heads)
            backend = LshAttention(n_hashes=2, n_bits=n_bits, window=4,
                                   stats=stats)
            model.forward_full(tokens, backend=backend)
            return stats.pass_rate

        assert pass_rate(6) < pass_rate(2)

    def test_identical_vectors_always_collide(self, rng):
        backend = LshAttention(n_hashes=1, n_bits=4)
        q = rng.normal(size=(4, 3, 8))
        k = np.concatenate([q[0:1][:, :, :], rng.normal(size=(1, 3, 8))])
        # A key equal to the query hashes to the same bucket -> attended.
        planes = backend._hyperplanes(0, 8)
        codes_q = backend._bucket_codes(q[0], planes)
        codes_k = backend._bucket_codes(q[0], planes)
        np.testing.assert_array_equal(codes_q, codes_k)

    def test_validation(self):
        with pytest.raises(ValueError):
            LshAttention(n_hashes=0)


class TestBlockSparse:
    def test_runs_and_is_causal(self, model, tokens):
        backend = BlockSparseAttention(block_size=8, top_blocks=2, window=4)
        base = model.forward_full(tokens, backend=backend)
        mutated = tokens.copy()
        mutated[-1] = (mutated[-1] + 1) % TINY.vocab_size
        out = model.forward_full(mutated, backend=backend)
        np.testing.assert_allclose(base[:-1], out[:-1], atol=1e-12)

    def test_selecting_all_blocks_is_dense(self, model, tokens):
        dense = model.forward_full(tokens)
        backend = BlockSparseAttention(block_size=8, top_blocks=100,
                                       window=1, n_sink=0)
        out = model.forward_full(tokens, backend=backend)
        np.testing.assert_allclose(dense, out, atol=1e-12)

    def test_block_granularity_caps_sparsity(self, model, tokens):
        """Coarse blocks force whole-block retrieval: the number of
        attended sparse tokens is a multiple-ish of the block size (the
        Section 3.1 granularity critique)."""
        stats = FilterStats(TINY.n_layers, TINY.n_kv_heads)
        backend = BlockSparseAttention(block_size=16, top_blocks=1, window=2,
                                       stats=stats)
        model.forward_full(tokens, backend=backend)
        assert stats.passed.sum() > 0
        # With one 16-token block selected per query, per-query retrieval
        # granularity is ~16 tokens even though k=1 block was requested.
        per_query = stats.passed.sum() / stats.queries.sum()
        assert per_query > 4

    def test_stats_invariants(self, model, tokens):
        stats = FilterStats(TINY.n_layers, TINY.n_kv_heads)
        backend = BlockSparseAttention(block_size=8, top_blocks=2, window=4,
                                       stats=stats)
        model.forward_full(tokens, backend=backend)
        assert (stats.passed <= stats.candidates).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockSparseAttention(block_size=0)
