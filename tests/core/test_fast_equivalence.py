"""Fast (head-batched, packed) hybrid path == reference per-head path.

The fast path is the production decode path; the reference loop is the
correctness oracle.  These tests pin them together: outputs ``np.allclose``,
selected sparse-key sets and ``FilterStats`` counters *exactly* equal —
across GQA group sizes, ITQ on/off, per-head thresholds, tie-heavy scores,
and the short-context (no sparse region) edge case.
"""

import numpy as np
import pytest

from repro.core.config import LongSightConfig
from repro.core.hybrid import LongSightAttention
from repro.core.itq import ItqRotations, random_rotation
from repro.core.metrics import FilterStats
from repro.llm.config import ModelConfig
from repro.llm.kv_cache import KVCache
from tests.conftest import TINY


def _qkv(rng, n_q_heads, n_kv_heads, n_new, n_ctx, head_dim):
    q = rng.normal(size=(n_q_heads, n_new, head_dim))
    k = rng.normal(size=(n_kv_heads, n_ctx, head_dim))
    v = rng.normal(size=(n_kv_heads, n_ctx, head_dim))
    return q, k, v


def _rotation_bank(n_layers, n_kv_heads, head_dim, seed=0):
    bank = ItqRotations(n_layers, n_kv_heads, head_dim)
    for layer in range(n_layers):
        for head in range(n_kv_heads):
            bank.set(layer, head,
                     random_rotation(head_dim, seed + 13 * layer + head))
    return bank


def _compare(config, q, k, v, rotations=None, n_layers=1):
    """Run both paths; assert outputs/selections/stats agree."""
    n_q_heads = q.shape[0]
    n_kv_heads = k.shape[0]
    results = {}
    for fast in (False, True):
        stats = FilterStats(n_layers, n_kv_heads)
        backend = LongSightAttention(config, rotations=rotations,
                                     stats=stats, use_fast_path=fast)
        backend.selection_capture = {}
        out = backend.forward(0, q, k, v)
        results[fast] = (out, backend.selection_capture, stats)
    out_ref, sel_ref, stats_ref = results[False]
    out_fast, sel_fast, stats_fast = results[True]
    np.testing.assert_allclose(out_fast, out_ref, atol=1e-12)
    assert set(sel_fast) == set(sel_ref)
    for key in sel_ref:
        np.testing.assert_array_equal(sel_fast[key], sel_ref[key])
    np.testing.assert_array_equal(stats_fast.candidates, stats_ref.candidates)
    np.testing.assert_array_equal(stats_fast.passed, stats_ref.passed)
    np.testing.assert_array_equal(stats_fast.retrieved, stats_ref.retrieved)
    np.testing.assert_array_equal(stats_fast.queries, stats_ref.queries)
    return out_ref


@pytest.mark.parametrize("n_q_heads,n_kv_heads", [(4, 4), (4, 2), (8, 2),
                                                  (4, 1)])
def test_gqa_group_sizes(rng, n_q_heads, n_kv_heads):
    d = 16
    q, k, v = _qkv(rng, n_q_heads, n_kv_heads, 5, 64, d)
    config = LongSightConfig(window=8, n_sink=2, top_k=6, thresholds=d // 2)
    _compare(config, q, k, v)


@pytest.mark.parametrize("use_itq", [False, True])
def test_itq_on_off(rng, use_itq):
    d = 16
    n_kv = 2
    q, k, v = _qkv(rng, 4, n_kv, 3, 48, d)
    rotations = _rotation_bank(1, n_kv, d) if use_itq else None
    config = LongSightConfig(window=6, n_sink=2, top_k=4,
                             thresholds=d // 2, use_itq=use_itq)
    _compare(config, q, k, v, rotations=rotations)


def test_per_kv_head_threshold_arrays(rng):
    d = 16
    q, k, v = _qkv(rng, 4, 2, 4, 50, d)
    thresholds = np.array([[d // 4, d]])  # one open head, one choked head
    config = LongSightConfig(window=6, n_sink=1, top_k=8,
                             thresholds=thresholds)
    _compare(config, q, k, v)


def test_per_q_head_thresholds(rng):
    d = 16
    q, k, v = _qkv(rng, 4, 2, 4, 50, d)
    thresholds = np.array([[d // 4, d // 2, 3 * d // 4, d]])
    config = LongSightConfig(window=6, n_sink=1, top_k=8,
                             thresholds=thresholds,
                             per_q_head_thresholds=True)
    # Per-query-head stats resolution (the granularity ablation setup).
    stats_ref = FilterStats(1, 4)
    stats_fast = FilterStats(1, 4)
    ref = LongSightAttention(config, stats=stats_ref, use_fast_path=False)
    fast = LongSightAttention(config, stats=stats_fast, use_fast_path=True)
    np.testing.assert_allclose(fast.forward(0, q, k, v),
                               ref.forward(0, q, k, v), atol=1e-12)
    np.testing.assert_array_equal(stats_fast.passed, stats_ref.passed)
    np.testing.assert_array_equal(stats_fast.retrieved, stats_ref.retrieved)


def test_tie_heavy_scores(rng):
    """Quantized q/k produce massive score ties; tie-breaking must agree."""
    d = 8
    n_ctx = 60
    q = rng.integers(-1, 2, size=(4, 3, d)).astype(float)
    k = rng.integers(-1, 2, size=(2, n_ctx, d)).astype(float)
    v = rng.normal(size=(2, n_ctx, d))
    config = LongSightConfig(window=4, n_sink=1, top_k=5, thresholds=d // 2)
    _compare(config, q, k, v)


def test_short_context_no_sparse_region(rng):
    """Window covers the whole context: the sparse stage must not run."""
    d = 16
    q, k, v = _qkv(rng, 4, 2, 3, 10, d)
    config = LongSightConfig(window=32, n_sink=2, top_k=4, thresholds=d // 2)
    out = _compare(config, q, k, v)
    stats = FilterStats(1, 2)
    backend = LongSightAttention(config, stats=stats)
    backend.forward(0, q, k, v)
    assert stats.candidates.sum() == 0
    assert np.isfinite(out).all()


def test_top_k_zero_and_top_k_covering(rng):
    d = 16
    q, k, v = _qkv(rng, 4, 2, 4, 40, d)
    for top_k in (0, 1, 40):
        config = LongSightConfig(window=4, n_sink=1, top_k=top_k, thresholds=0)
        _compare(config, q, k, v)


@pytest.mark.parametrize("use_itq", [False, True])
def test_large_query_block_float_concordance(rng, use_itq):
    """Blocks above _PACKED_CONC_MAX_NEW take the BLAS concordance branch;
    it must agree with the reference exactly like the packed branch does."""
    d = 16
    n_kv = 2
    q, k, v = _qkv(rng, 4, n_kv, 40, 120, d)
    rotations = _rotation_bank(1, n_kv, d) if use_itq else None
    config = LongSightConfig(window=8, n_sink=2, top_k=6,
                             thresholds=d // 2, use_itq=use_itq)
    _compare(config, q, k, v, rotations=rotations)


def test_cached_large_block_unpacks_sign_store(rng):
    """Prefill-sized cached forward reads signs back out of the packed
    store (unpack + BLAS) rather than re-extracting them from the keys."""
    d = TINY.head_dim
    config = LongSightConfig(window=6, n_sink=2, top_k=4, thresholds=d // 2)
    cache = KVCache(TINY)
    backend = LongSightAttention(config)
    backend.prepare_cache(cache)
    k = rng.normal(size=(TINY.n_kv_heads, 96, d))
    cache.append(0, k, k)
    q = rng.normal(size=(TINY.n_q_heads, 48, d))
    cached = backend.forward_cached(0, q, cache)
    ref = LongSightAttention(config, use_fast_path=False).forward(
        0, q, cache.layers[0].keys, cache.layers[0].values)
    np.testing.assert_allclose(cached, ref, atol=1e-12)


def test_forward_cached_consumes_sign_cache(rng):
    """The cached path (packed sign store) == uncached fast == reference."""
    d = TINY.head_dim
    rotations = _rotation_bank(TINY.n_layers, TINY.n_kv_heads, d)
    config = LongSightConfig(window=6, n_sink=2, top_k=4,
                             thresholds=d // 2, use_itq=True)
    cache = KVCache(TINY)
    backend = LongSightAttention(config, rotations=rotations)
    backend.prepare_cache(cache)
    assert cache.sign_cache_enabled
    for n in (20, 25, 5):  # uneven incremental appends, 50 tokens total
        k = rng.normal(size=(TINY.n_kv_heads, n, d))
        for layer in range(TINY.n_layers):
            cache.append(layer, k, k)
    q = rng.normal(size=(TINY.n_q_heads, 1, d))
    for layer in range(TINY.n_layers):
        cached = backend.forward_cached(layer, q, cache)
        uncached = backend.forward(layer, q, cache.layers[layer].keys,
                                   cache.layers[layer].values)
        ref = LongSightAttention(config, rotations=rotations,
                                 use_fast_path=False).forward(
            layer, q, cache.layers[layer].keys, cache.layers[layer].values)
        np.testing.assert_allclose(cached, uncached, atol=1e-12)
        np.testing.assert_allclose(cached, ref, atol=1e-12)


def test_incompatible_sign_cache_falls_back(rng):
    """A sign cache built without rotations must not be consumed by an
    ITQ-enabled backend (and vice versa) — outputs must still be correct."""
    d = 16
    config_plain = LongSightConfig(window=4, n_sink=1, top_k=4,
                                   thresholds=d // 2)
    small = ModelConfig(name="eq-test", vocab_size=8, n_layers=1,
                        n_q_heads=4, n_kv_heads=2, head_dim=d, d_ff=8)
    cache = KVCache(small)
    rotations = _rotation_bank(1, 2, d)
    cache.enable_sign_cache(rotations)  # rotated store...
    k = rng.normal(size=(2, 30, d))
    cache.append(0, k, k)
    q = rng.normal(size=(4, 1, d))
    backend = LongSightAttention(config_plain)  # ...but plain-sign backend
    out = backend.forward_cached(0, q, cache)
    ref = LongSightAttention(config_plain, use_fast_path=False).forward(
        0, q, cache.layers[0].keys, cache.layers[0].values)
    np.testing.assert_allclose(out, ref, atol=1e-12)


def test_model_level_equivalence(rng):
    """Full transformer forward with fast vs reference hybrid backends."""
    from repro.llm.model import Transformer

    model = Transformer(TINY, seed=3)
    tokens = rng.integers(0, TINY.vocab_size, size=80)
    config = LongSightConfig(window=8, n_sink=2, top_k=4,
                             thresholds=TINY.head_dim // 2)
    fast = model.forward_full(tokens, backend=LongSightAttention(config))
    ref = model.forward_full(
        tokens, backend=LongSightAttention(config, use_fast_path=False))
    np.testing.assert_allclose(fast, ref, atol=1e-10)


def test_supervised_offload_equivalence(rng):
    """The zero-fault supervised device path joins the equivalence chain:
    same outputs, selected-key sets, and FilterStats as the unsupervised
    device backend, which in turn matches the software fast path."""
    from repro.drex.backend import DrexOffloadBackend
    from repro.llm.model import Transformer
    from repro.system.faults import FaultPlan
    from repro.system.supervisor import SupervisedOffloadBackend

    model = Transformer(TINY, seed=3)
    tokens = rng.integers(0, TINY.vocab_size, size=80)
    config = LongSightConfig(window=8, n_sink=2, top_k=4,
                             thresholds=TINY.head_dim // 2)
    results = {}
    for name, backend in (
            ("plain", DrexOffloadBackend(TINY, config, flush_granularity=1)),
            ("supervised", SupervisedOffloadBackend(
                TINY, config, plan=FaultPlan.none(), flush_granularity=1))):
        stats = FilterStats(TINY.n_layers, TINY.n_kv_heads)
        backend.device.stats = stats
        backend.selection_capture = {}
        out = model.forward_full(tokens, backend=backend, block_size=16)
        results[name] = (out, backend.selection_capture, stats)
    out_plain, sel_plain, stats_plain = results["plain"]
    out_sup, sel_sup, stats_sup = results["supervised"]
    np.testing.assert_array_equal(out_sup, out_plain)
    assert set(sel_sup) == set(sel_plain)
    for key in sel_plain:
        np.testing.assert_array_equal(sel_sup[key], sel_plain[key])
    for field in ("candidates", "passed", "retrieved", "queries"):
        np.testing.assert_array_equal(getattr(stats_sup, field),
                                      getattr(stats_plain, field))
    # And the device path tracks the software fast path.
    software = model.forward_full(tokens, backend=LongSightAttention(config),
                                  block_size=16)
    np.testing.assert_allclose(out_sup, software, atol=1e-10)
