"""FleetReport reduction of resilience counters and brownout attribution.

The merge invariants the chaos bench leans on: per-worker counters
(``fleet.worker_suspect``, ``fleet.failovers``, brownout stage tokens)
reduce associatively across registries, per-token stage attribution
pools across workers, and the empty / single-worker edges degrade
gracefully instead of dividing by zero.
"""

from __future__ import annotations

import pytest

from repro.fleet import FleetReport
from repro.obs import MetricsRegistry
from repro.serve.events import RequestEvents, ServeReport


def make_events(request_id: int, *, finished: bool = True,
                shed: bool = False,
                brownout: dict = None) -> RequestEvents:
    ev = RequestEvents(request_id=request_id, tenant="default",
                       arrival_s=0.0)
    ev.admitted_s = 0.0
    ev.first_token_s = 0.1
    if finished:
        ev.finished_s = 1.0
    ev.shed = shed
    ev.rejected = shed
    ev.brownout_tokens = dict(brownout or {})
    return ev


def make_worker_report(events, tokens: int = 0,
                       clock_s: float = 1.0) -> ServeReport:
    return ServeReport(system="w", events=list(events), clock_s=clock_s,
                       tokens_generated=tokens, peak_decode_batch=1,
                       preemptions=0, pool_blocks=8,
                       pool_high_watermark=0)


def make_report(worker_events, tokens_per_worker=(), **kwargs
                ) -> FleetReport:
    workers = []
    for i, events in enumerate(worker_events):
        tokens = tokens_per_worker[i] if i < len(tokens_per_worker) else 0
        workers.append(make_worker_report(events, tokens=tokens))
    defaults = dict(migrations=0, prefix_hits=0, prefix_misses=0,
                    shared_blocks_peak=0)
    defaults.update(kwargs)
    return FleetReport(workers=workers,
                       metrics=MetricsRegistry(enabled=True), **defaults)


class TestCounterMerge:
    def test_resilience_counters_sum_across_workers(self):
        registries = [MetricsRegistry(enabled=True) for _ in range(3)]
        for i, registry in enumerate(registries):
            registry.counter("fleet.worker_suspect").inc(i)
            registry.counter("fleet.failovers").inc(1)
            registry.counter("serve.brownout.stage_tokens").inc(10 * i)
        merged = MetricsRegistry(enabled=True)
        for registry in registries:
            merged.merge(registry)
        assert merged.counter("fleet.worker_suspect").value == 3
        assert merged.counter("fleet.failovers").value == 3
        assert merged.counter("serve.brownout.stage_tokens").value == 30

    def test_merge_with_empty_registry_is_identity(self):
        merged = MetricsRegistry(enabled=True)
        merged.counter("fleet.failovers").inc(2)
        merged.merge(MetricsRegistry(enabled=True))
        assert merged.counter("fleet.failovers").value == 2
        empty = MetricsRegistry(enabled=True)
        empty.merge(merged)
        assert empty.counter("fleet.failovers").value == 2

    def test_merge_prefixed_transplants_only_fleet_counters(self):
        # The failover path moves fleet.* history onto the replacement
        # engine's registry without double-counting replayed serve.*.
        old = MetricsRegistry(enabled=True)
        old.counter("fleet.worker_suspect").inc(4)
        old.counter("fleet.step_deadline_miss").inc(2)
        old.counter("serve.tokens_generated").inc(100)
        old.histogram("fleet.step_latency_s",
                      track_values=True).observe(0.001)
        fresh = MetricsRegistry(enabled=True)
        fresh.counter("serve.tokens_generated").inc(7)
        fresh.merge_prefixed(old, "fleet.")
        assert fresh.counter("fleet.worker_suspect").value == 4
        assert fresh.counter("fleet.step_deadline_miss").value == 2
        assert fresh.counter("serve.tokens_generated").value == 7
        assert fresh.histogram("fleet.step_latency_s",
                               track_values=True).count == 1


class TestReportEdges:
    def test_empty_fleet_report(self):
        report = make_report([])
        assert report.availability == 1.0
        assert report.brownout_stage_tokens == {}
        assert report.brownout_token_fraction == 0.0
        assert report.failover_latency_max_s == 0.0
        assert report.as_dict()["health"]["failovers"] == 0

    def test_single_worker_report(self):
        events = [make_events(0, brownout={1: 2}),
                  make_events(1, finished=False, shed=True)]
        report = make_report([events], worker_suspects=1)
        assert report.availability == 0.5
        assert report.brownout_stage_tokens == {1: 2}
        assert report.worker_suspects == 1

    def test_brownout_stage_tokens_pool_across_workers(self):
        w0 = [make_events(0, brownout={1: 3, 3: 2})]
        w1 = [make_events(1, brownout={3: 5}), make_events(2)]
        report = make_report([w0, w1], tokens_per_worker=(5, 7))
        assert report.brownout_stage_tokens == {1: 3, 3: 7}
        assert report.brownout_tokens == 10
        assert report.brownout_token_fraction == pytest.approx(10 / 12)
        as_dict = report.as_dict()["brownout"]
        assert as_dict["stage_tokens"] == {"1": 3, "3": 7}

    def test_availability_counts_shed_against(self):
        events = [[make_events(i) for i in range(3)]
                  + [make_events(3, finished=False, shed=True)]]
        report = make_report(events)
        assert report.availability == pytest.approx(0.75)

    def test_failover_accounting_surfaces_in_dict(self):
        report = make_report([[make_events(0)]], failovers=2,
                             failover_sessions=5,
                             failover_latency_s=[0.002, 0.004],
                             worker_suspects=3, worker_restores=1)
        health = report.as_dict()["health"]
        assert health["failovers"] == 2
        assert health["failover_sessions"] == 5
        assert health["failover_latency_max_s"] == pytest.approx(0.004)
        assert health["worker_suspects"] == 3
        assert health["worker_restores"] == 1
