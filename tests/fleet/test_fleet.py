"""Fleet equivalence suite: sharded serving must not change a single bit.

The acceptance anchor mirrors the engine suite's: every request served
through the :class:`FleetRouter` — including prefix-cache borrowers and
sessions migrated across workers mid-flight — produces the exact token
stream of a solo :func:`repro.llm.sampling.generate` run.
"""

import numpy as np
import pytest

from repro.core.config import LongSightConfig
from repro.core.hybrid import LongSightAttention
from repro.fleet import FleetRouter, FleetWorker, make_worker
from repro.llm.model import Transformer
from repro.llm.sampling import generate
from repro.serve.paged_kv import PagedKVPool
from repro.serve.scheduler import ServeRequest
from repro.serve.engine import ServeEngine
from tests.conftest import TINY

LS = LongSightConfig(window=8, n_sink=4, top_k=12, thresholds=3)


@pytest.fixture(scope="module")
def model():
    return Transformer(TINY, seed=0)


def _backend(_request=None):
    return LongSightAttention(LS)


def _worker(model, wid, n_blocks=64, block_tokens=16):
    return make_worker(wid, model, _backend, n_blocks=n_blocks,
                       block_tokens=block_tokens)


def _shared_prefix_requests(rng, n, prefix_tokens=48, out=8):
    """Burst arrivals sharing a block-aligned prefix (overlap => hits)."""
    prefix = rng.integers(0, TINY.vocab_size, size=prefix_tokens)
    requests = []
    for i in range(n):
        tail = rng.integers(0, TINY.vocab_size,
                            size=int(rng.integers(8, 20)))
        requests.append(ServeRequest(
            request_id=i, prompt=np.concatenate([prefix, tail]),
            max_new_tokens=out, arrival_s=0.0))
    return requests


class TestBitIdentity:
    def test_fleet_matches_solo_generate_with_prefix_hits(self, model, rng):
        requests = _shared_prefix_requests(rng, 6)
        refs = [generate(model, r.prompt, r.max_new_tokens,
                         backend=_backend()) for r in requests]
        fleet = FleetRouter([_worker(model, 0), _worker(model, 1)])
        report = fleet.run(requests)
        for request, reference in zip(requests, refs):
            assert request.outputs == list(reference)
        # the shared system prompt was actually served from the cache
        assert report.prefix_hits > 0
        assert report.prefix_hit_rate > 0
        assert report.completed == len(requests)
        # every pool fully unwinds: refcounts hit zero, no leaks
        for worker in fleet.workers:
            assert worker.pool.n_free == worker.pool.n_blocks
            assert worker.pool.shared_blocks == 0

    def test_single_worker_fleet_matches_plain_engine(self, model, rng):
        """One-worker fleet == ServeEngine.run on the same trace."""
        prompts = [rng.integers(0, TINY.vocab_size, size=n)
                   for n in (20, 33, 48)]
        fleet_requests = [
            ServeRequest(request_id=i, prompt=p, max_new_tokens=8)
            for i, p in enumerate(prompts)]
        engine_requests = [
            ServeRequest(request_id=i, prompt=p, max_new_tokens=8)
            for i, p in enumerate(prompts)]

        fleet = FleetRouter([_worker(model, 0)])
        fleet_report = fleet.run(fleet_requests)

        pool = PagedKVPool(TINY, n_blocks=64, block_tokens=16)
        engine = ServeEngine(model, pool, _backend)
        engine_report = engine.run(engine_requests)

        for a, b in zip(fleet_requests, engine_requests):
            assert a.outputs == b.outputs
        # (clocks are measured wall time here, so only the token
        # accounting is comparable across the two runs)
        assert fleet_report.tokens_generated == \
            engine_report.tokens_generated
        assert fleet_report.completed == len(engine_report.completed)


class TestMigration:
    def test_exhausted_worker_migrates_and_stays_bit_identical(
            self, model, rng):
        prompts = [rng.integers(0, TINY.vocab_size, size=40)
                   for _ in range(2)]
        refs = [generate(model, p, 12, backend=_backend())
                for p in prompts]
        # worker 0: room to admit both prompts but not to grow both
        # sessions to completion; worker 1: ample.
        cramped = _worker(model, 0, n_blocks=10, block_tokens=8)
        ample = _worker(model, 1, n_blocks=64, block_tokens=8)
        fleet = FleetRouter([cramped, ample])
        requests = [ServeRequest(request_id=i, prompt=p,
                                 max_new_tokens=12, session="s0")
                    for i, p in enumerate(prompts)]
        # session affinity pins both onto the cramped worker, forcing a
        # pool-exhaustion preemption that the router converts into a
        # cross-worker migration.
        fleet._affinity["s0"] = cramped
        report = fleet.run(requests)

        for request, reference in zip(requests, refs):
            assert request.outputs == list(reference)
        assert report.migrations >= 1
        assert report.completed == 2
        assert report.shed == 0
        migrated = [r for r in requests if r.events.migrations > 0]
        assert migrated, "no request recorded a migration"
        # the migrated request is reported by exactly one worker
        all_ids = [e.request_id for worker in report.workers
                   for e in worker.events]
        assert sorted(all_ids) == [0, 1]
        for worker in fleet.workers:
            assert worker.pool.n_free == worker.pool.n_blocks

    def test_migration_cap_falls_back_to_local_handling(self, model, rng):
        # both workers cramped: with zero migration budget the victim
        # must be requeued/shed locally, never bounced.
        prompts = [rng.integers(0, TINY.vocab_size, size=40)
                   for _ in range(2)]
        refs = [generate(model, p, 12, backend=_backend())
                for p in prompts]
        fleet = FleetRouter([_worker(model, 0, n_blocks=10, block_tokens=8),
                             _worker(model, 1, n_blocks=64, block_tokens=8)],
                            max_migrations=0)
        requests = [ServeRequest(request_id=i, prompt=p,
                                 max_new_tokens=12, session="s0")
                    for i, p in enumerate(prompts)]
        fleet._affinity["s0"] = fleet.workers[0]
        report = fleet.run(requests)
        assert report.migrations == 0
        # local preemption + recompute-resume still serves both exactly
        for request, reference in zip(requests, refs):
            assert request.outputs == list(reference)
        assert report.preemptions >= 1


class TestPlacement:
    def test_prefix_locality_beats_free_space(self, model, rng):
        """A worker holding the prompt's cached prefix wins placement
        even when a sibling has more free blocks."""
        holder = _worker(model, 0, n_blocks=32)
        empty = _worker(model, 1, n_blocks=64)
        fleet = FleetRouter([holder, empty])
        for worker in fleet.workers:
            worker.run = worker.engine.start([])

        prefix = rng.integers(0, TINY.vocab_size, size=32)
        resident = holder.pool.new_cache()
        shape = (TINY.n_kv_heads, len(prefix), TINY.head_dim)
        k = np.zeros(shape, dtype=np.float32)
        for layer in range(TINY.n_layers):
            resident.append(layer, k, k.copy())
        resident.publish_prefix(prefix)

        request = ServeRequest(
            request_id=0,
            prompt=np.concatenate([prefix, rng.integers(
                0, TINY.vocab_size, size=8)]),
            max_new_tokens=4)
        assert fleet._place(request) is holder
        # without the resident prefix, free space decides
        other = ServeRequest(
            request_id=1,
            prompt=rng.integers(0, TINY.vocab_size, size=40),
            max_new_tokens=4)
        assert fleet._place(other) is empty
        resident.free()

    def test_session_affinity_overrides_scores(self, model):
        small = _worker(model, 0, n_blocks=16)
        big = _worker(model, 1, n_blocks=64)
        fleet = FleetRouter([small, big])
        for worker in fleet.workers:
            worker.run = worker.engine.start([])
        fleet._affinity["chat-1"] = small
        request = ServeRequest(
            request_id=0, prompt=np.zeros(24, dtype=np.int64),
            max_new_tokens=4, session="chat-1")
        assert fleet._place(request) is small


class TestReportReduction:
    def test_merged_metrics_sum_worker_registries(self, model, rng):
        requests = _shared_prefix_requests(rng, 6)
        fleet = FleetRouter([_worker(model, 0), _worker(model, 1)])
        report = fleet.run(requests)
        merged = report.metrics
        per_worker = [w.obs.metrics for w in fleet.workers]
        for name in ("serve.prefix.hit", "serve.admitted"):
            assert merged.counter(name).value == sum(
                m.counter(name).value for m in per_worker)
        # pooled prefix stats come from the pools themselves
        assert report.prefix_hits == sum(
            w.pool.prefix_hits for w in fleet.workers)
        payload = report.as_dict()
        assert payload["workers"] == 2
        assert payload["prefix"]["hits"] == report.prefix_hits
        assert len(payload["per_worker"]) == 2

    def test_every_request_reported_exactly_once(self, model, rng):
        requests = _shared_prefix_requests(rng, 5)
        fleet = FleetRouter([_worker(model, 0), _worker(model, 1)])
        report = fleet.run(requests)
        ids = sorted(e.request_id for e in report.events)
        assert ids == [0, 1, 2, 3, 4]
        assert report.tokens_generated == sum(
            len(r.outputs) for r in requests)


class TestRouterValidation:
    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError):
            FleetRouter([])

    def test_duplicate_worker_ids_rejected(self, model):
        with pytest.raises(ValueError):
            FleetRouter([_worker(model, 0), _worker(model, 0)])

    def test_shared_pool_rejected(self, model):
        worker = _worker(model, 0)
        twin = FleetWorker(1, worker.engine)
        with pytest.raises(ValueError):
            FleetRouter([worker, twin])
