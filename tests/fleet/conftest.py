"""Fleet-suite fixtures: resilience marker + a tighter watchdog.

Every test here is tagged ``resilience`` (select with ``-m resilience``).
The root conftest already arms a 120s SIGALRM around every test, but the
failure mode this suite exists to catch — a lockstep router waiting
forever on a gray worker — would still burn two CI minutes per test.
The suite re-arms the alarm at a tighter limit so a router that blocks
on a wedged worker fails in seconds, mirroring the durable-suite
pattern rather than replacing the root one.
"""

from __future__ import annotations

import signal
import threading

import pytest

from repro.bench.fleet import fleet_workload
from repro.bench.serve import TINY_MODEL
from repro.llm.model import Transformer
from repro.serve.crossval import default_systems

#: A healthy router iteration is milliseconds; a hung one never returns.
RESILIENCE_TIMEOUT_S = 60.0


def pytest_collection_modifyitems(items):
    for item in items:
        item.add_marker(pytest.mark.resilience)


@pytest.fixture(autouse=True)
def _resilience_watchdog():
    """Tighter SIGALRM for this suite (a router stuck waiting on a gray
    worker fails fast instead of eating the global budget)."""
    if not hasattr(signal, "SIGALRM") \
            or threading.current_thread() is not threading.main_thread():
        yield
        return

    def _on_alarm(signum, frame):
        raise TimeoutError(
            f"fleet test exceeded the {RESILIENCE_TIMEOUT_S:.0f}s "
            "watchdog (the router is likely blocked on a gray worker)")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, RESILIENCE_TIMEOUT_S)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(scope="session")
def fleet_model():
    return Transformer(TINY_MODEL, seed=0)


@pytest.fixture(scope="session")
def longsight_system():
    return default_systems()["longsight"]


@pytest.fixture
def make_trace(fleet_model):
    """Deterministic two-tenant fleet trace; fresh requests per call."""
    def build(n_steady: int = 10, n_burst: int = 6,
              output_tokens: int = 8, seed: int = 0):
        return fleet_workload(n_steady, n_burst,
                              fleet_model.config.vocab_size, seed=seed,
                              output_tokens=output_tokens)
    return build
