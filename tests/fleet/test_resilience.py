"""Gray-failure detection and cross-worker failover.

Covers the suspicion model directly (synthetic latencies into a
:class:`~repro.fleet.resilience.HealthMonitor`), then the router-level
behaviors it drives: suspect drain + self-heal, the bounded-wait guard
(:class:`~repro.errors.WorkerStalledError` instead of hanging), and true
cross-worker failover with bit-identical outputs for every gray kind.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench.fleet import _build_fleet
from repro.bench.fleet_chaos import _fleet_outputs
from repro.errors import WorkerStalledError
from repro.fleet import HealthMonitor, HealthPolicy, WorkerState
from repro.obs import MetricsRegistry
from repro.system.faults import GRAY_KINDS, GrayFailurePlan

BASELINE_S = 0.001  #: synthetic healthy step latency


def warmed_monitor(policy: HealthPolicy,
                   n: int = 16) -> HealthMonitor:
    """Monitor with one attached worker and a settled healthy baseline."""
    monitor = HealthMonitor(policy)
    monitor.attach(0, MetricsRegistry(enabled=True))
    for _ in range(n):
        monitor.observe(0, BASELINE_S)
    return monitor


class TestSuspicionModel:
    def test_healthy_baseline_stays_healthy(self):
        monitor = warmed_monitor(HealthPolicy())
        before, after = monitor.observe(0, BASELINE_S * 1.5)
        assert after is WorkerState.HEALTHY
        assert monitor.suspect_transitions == 0

    def test_cold_worker_gets_benefit_of_doubt(self):
        monitor = HealthMonitor(HealthPolicy(min_samples=8))
        monitor.attach(0, MetricsRegistry(enabled=True))
        # Below min_samples phi is 0; only the deadline floor guards.
        _, after = monitor.observe(0, 0.2)
        assert after is WorkerState.HEALTHY

    def test_deadline_miss_suspects_then_fails(self):
        policy = HealthPolicy(step_deadline_s=1.0,
                              fail_after_deadline_misses=2)
        monitor = warmed_monitor(policy)
        _, after = monitor.observe(0, 2.0)
        assert after is WorkerState.SUSPECT
        _, after = monitor.observe(0, 2.0)
        assert after is WorkerState.FAILED
        # FAILED is sticky: a healthy sample cannot resurrect it.
        _, after = monitor.observe(0, BASELINE_S)
        assert after is WorkerState.FAILED

    def test_healthy_sample_resets_strikes(self):
        policy = HealthPolicy(step_deadline_s=1.0,
                              fail_after_deadline_misses=2)
        monitor = warmed_monitor(policy)
        monitor.observe(0, 2.0)                      # strike 1 -> SUSPECT
        _, after = monitor.observe(0, BASELINE_S)    # heals
        assert after is WorkerState.HEALTHY
        _, after = monitor.observe(0, 2.0)           # strike 1 again
        assert after is WorkerState.SUSPECT

    def test_phi_outlier_suspects_without_deadline_miss(self):
        # Deadline huge, so only the phi path can suspect.
        policy = HealthPolicy(step_deadline_s=1e6)
        monitor = warmed_monitor(policy)
        _, after = monitor.observe(0, BASELINE_S * 50)
        assert after is WorkerState.SUSPECT
        health = monitor.health(0)
        assert health.last_phi >= policy.suspect_phi

    def test_subdeadline_spike_never_accumulates_to_failover(self):
        # The half-deadline gate: a ms-scale fsync spike over a us-scale
        # baseline has astronomical phi but must stay a SUSPECT verdict
        # forever, never striking its way to FAILED.
        policy = HealthPolicy(step_deadline_s=1.0,
                              fail_after_deadline_misses=2)
        monitor = warmed_monitor(policy)
        for _ in range(10):
            _, after = monitor.observe(0, 0.05)  # phi >> fail_phi, < D/2
            assert after is WorkerState.SUSPECT
        assert monitor.health(0).deadline_misses == 0

    def test_material_phi_strikes_accumulate(self):
        policy = HealthPolicy(step_deadline_s=1.0,
                              fail_after_deadline_misses=2)
        monitor = warmed_monitor(policy)
        _, after = monitor.observe(0, 0.6)  # >= D/2, phi extreme
        assert after is WorkerState.SUSPECT
        _, after = monitor.observe(0, 0.6)
        assert after is WorkerState.FAILED

    def test_outliers_do_not_poison_the_baseline(self):
        # A creeping slowdown must not normalize itself: suspected
        # samples are judged against the baseline but never join it.
        policy = HealthPolicy(step_deadline_s=1e6)
        monitor = warmed_monitor(policy)
        before = len(monitor.health(0).baseline.values)
        monitor.observe(0, BASELINE_S * 50)
        assert len(monitor.health(0).baseline.values) == before

    def test_derived_deadline_scales_with_healthy_p95(self):
        policy = HealthPolicy(deadline_factor=20.0, deadline_floor_s=0.25)
        monitor = warmed_monitor(policy, n=32)
        assert monitor.deadline_s(0) == pytest.approx(0.25)  # floor wins
        slow = warmed_monitor(policy, n=0)
        for _ in range(32):
            slow.observe(0, 0.1)
        assert slow.deadline_s(0) == pytest.approx(2.0)  # 20 * p95

    def test_state_or_healthy_for_unattached_worker(self):
        monitor = HealthMonitor()
        assert monitor.state_or_healthy(99) is WorkerState.HEALTHY
        monitor.attach(1, MetricsRegistry(enabled=True))
        monitor.mark_failed(1)
        assert monitor.state_or_healthy(1) is WorkerState.FAILED
        assert monitor.failures == 1

    def test_suspect_counter_increments_on_transitions_only(self):
        policy = HealthPolicy(step_deadline_s=1.0,
                              fail_after_deadline_misses=10)
        monitor = warmed_monitor(policy)
        monitor.observe(0, 2.0)
        monitor.observe(0, 2.0)  # still SUSPECT, no new transition
        assert monitor.suspect_transitions == 1
        registry = monitor.health(0).metrics
        assert registry.counter("fleet.worker_suspect").value == 1


HEALTH = HealthPolicy(step_deadline_s=1.0, fail_after_deadline_misses=2)


def build_fleet(model, system, tmp_path, *, n_workers=4, plan=None,
                durable=True, blocks=64):
    return _build_fleet(
        n_workers, model, system, blocks, max_decode_batch=4,
        durable_root=pathlib.Path(tmp_path) if durable else None,
        snapshot_every=4,
        gray_plans=None if plan is None else {0: plan}, health=HEALTH)


class TestRouterResilience:
    @pytest.fixture()
    def reference(self, fleet_model, longsight_system, make_trace,
                  tmp_path):
        fleet = build_fleet(fleet_model, longsight_system,
                            tmp_path / "ref")
        report = fleet.run(make_trace())
        return report, _fleet_outputs(fleet)

    @pytest.mark.parametrize("kind", GRAY_KINDS)
    def test_failover_outputs_bit_identical(self, kind, fleet_model,
                                            longsight_system, make_trace,
                                            tmp_path, reference):
        ref_report, ref_outputs = reference
        plan = GrayFailurePlan(
            kind=kind, start_step=3, stall_s=2.0,
            period=1 if kind == "flapping_worker" else 4)
        fleet = build_fleet(fleet_model, longsight_system,
                            tmp_path / kind, plan=plan)
        report = fleet.run(make_trace())
        assert _fleet_outputs(fleet) == ref_outputs
        assert report.completed == ref_report.completed
        assert report.shed == 0 and report.rejected == 0
        if kind == "flapping_worker":
            # Period-1 flapping never misses twice in a row: repeatedly
            # suspected and drained, self-heals, no failover.
            assert report.failovers == 0
            assert report.worker_suspects >= 2
        else:
            assert report.failovers == 1
            assert report.failover_sessions >= 0
            assert report.failover_latency_max_s > 0.0
            assert report.metrics.counter("fleet.failovers").value == 1

    def test_recompute_failover_without_durable_dir(
            self, fleet_model, longsight_system, make_trace, tmp_path,
            reference):
        # No snapshots to recover from: failover falls back to draining
        # the raw in-memory run via recompute migration, still
        # bit-identical.
        _, ref_outputs = reference
        plan = GrayFailurePlan(kind="stuck_worker", start_step=3,
                               stall_s=2.0, period=4)
        fleet = build_fleet(fleet_model, longsight_system, tmp_path,
                            plan=plan, durable=False)
        report = fleet.run(make_trace())
        assert _fleet_outputs(fleet) == ref_outputs
        assert report.failovers == 1
        assert report.metrics.counter(
            "fleet.failover_recomputed").value == 1

    def test_single_worker_stall_raises_typed_error(
            self, fleet_model, longsight_system, make_trace, tmp_path):
        # Bounded-wait guard: with nowhere to fail over to, the router
        # must raise instead of waiting on the wedged worker forever.
        plan = GrayFailurePlan(kind="stuck_worker", start_step=2,
                               stall_s=2.0, period=4)
        fleet = build_fleet(fleet_model, longsight_system, tmp_path,
                            n_workers=1, plan=plan)
        with pytest.raises(WorkerStalledError) as excinfo:
            fleet.run(make_trace(n_steady=4, n_burst=2))
        assert excinfo.value.worker_id == 0
        assert excinfo.value.observed_s > excinfo.value.deadline_s

    def test_slow_worker_below_deadline_self_heals(
            self, fleet_model, longsight_system, make_trace, tmp_path,
            reference):
        # Stalls well under the fixed deadline: the worker may be
        # suspected via phi (gated at half the deadline -> never a
        # strike) but must keep its sessions and finish them itself.
        _, ref_outputs = reference
        plan = GrayFailurePlan(kind="slow_worker", start_step=3,
                               stall_s=0.2, period=4)
        fleet = build_fleet(fleet_model, longsight_system, tmp_path,
                            plan=plan)
        report = fleet.run(make_trace())
        assert _fleet_outputs(fleet) == ref_outputs
        assert report.failovers == 0
