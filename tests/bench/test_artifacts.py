"""Every registered benchmark must ship a valid committed artifact.

``repro.bench.registry`` lists each ``BENCH_*.json`` a CLI writes; this
suite fails when an artifact is missing from ``results/``, unparseable,
schema-stale, or invalid under the owning module's ``validate_payload``.
That makes "bench exists but its numbers were never committed" a test
failure rather than a silent gap.
"""

import json

import pytest

from repro.bench.registry import (REGISTRY, BenchSpec, check_all,
                                  check_artifact)
from repro.bench.tables import results_dir


def test_registry_covers_known_artifacts():
    names = {spec.result_name for spec in REGISTRY.values()}
    assert names == {"BENCH_attention.json", "BENCH_chaos.json",
                     "BENCH_serve.json", "BENCH_fleet.json",
                     "BENCH_obs.json", "BENCH_recovery.json",
                     "BENCH_fleet_chaos.json"}


@pytest.mark.parametrize("bench_tag", sorted(REGISTRY))
def test_committed_artifact_is_valid(bench_tag):
    spec = REGISTRY[bench_tag]
    problems = check_artifact(spec)
    assert problems == [], "\n".join(problems)


def test_check_all_matches_per_spec_checks():
    assert check_all() == []


def test_missing_artifact_is_reported(tmp_path):
    problems = check_artifact(REGISTRY["chaos"], tmp_path)
    assert len(problems) == 1
    assert "missing" in problems[0]
    assert "repro.bench.chaos" in problems[0]


def test_unparseable_artifact_is_reported(tmp_path):
    spec = REGISTRY["serve"]
    (tmp_path / spec.result_name).write_text("{not json")
    problems = check_artifact(spec, tmp_path)
    assert problems and "unparseable" in problems[0]


def test_stale_schema_version_is_reported(tmp_path):
    spec = REGISTRY["attention_micro"]
    payload = json.loads((results_dir() / spec.result_name).read_text())
    payload["schema_version"] = 0
    (tmp_path / spec.result_name).write_text(json.dumps(payload))
    problems = check_artifact(spec, tmp_path)
    assert any("schema_version" in p for p in problems)


def test_wrong_benchmark_tag_is_reported(tmp_path):
    spec = REGISTRY["obs_overhead"]
    payload = json.loads((results_dir() / spec.result_name).read_text())
    payload["benchmark"] = "something_else"
    (tmp_path / spec.result_name).write_text(json.dumps(payload))
    problems = check_artifact(spec, tmp_path)
    assert any("benchmark tag" in p for p in problems)


def test_unregistered_spec_roundtrip(tmp_path):
    """A new BenchSpec line is all a future bench needs to be enforced."""
    spec = BenchSpec("repro.bench.chaos", "BENCH_future.json", "future")
    assert "missing" in check_artifact(spec, tmp_path)[0]
