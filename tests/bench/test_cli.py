"""The `python -m repro.bench` experiment CLI."""

import pytest

from repro.bench.__main__ import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig7" in out and "table1" in out


def test_unknown_experiment(capsys):
    assert main(["nope"]) == 2
    assert "unknown experiments" in capsys.readouterr().out


def test_runs_fast_experiments(capsys, tmp_path, monkeypatch):
    import repro.bench.__main__ as cli

    monkeypatch.setattr(cli, "results_dir", lambda: tmp_path)
    assert main(["table1", "power"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out and "power and area" in out
    assert list(tmp_path.glob("*.txt"))
