"""Smoke test for the attention microbenchmark (`python -m repro.bench.micro`).

Runs the real benchmark at a tiny configuration and validates the
``BENCH_attention.json`` schema: required keys, units, per-backend series
lengths, and a strictly increasing context axis.
"""

import json

import numpy as np

from repro.bench.micro import (BACKENDS, RESULT_NAME, SCHEMA_VERSION, main,
                               run_micro, validate_payload)


def _tiny_run(tmp_path, contexts=(64, 128)):
    return run_micro(contexts=contexts, repeats=1, window=16, n_sink=4,
                     top_k=8, n_q_heads=4, n_kv_heads=2, head_dim=16,
                     block_size=32, out_dir=tmp_path)


def test_writes_valid_payload(tmp_path):
    table = _tiny_run(tmp_path)
    payload = json.loads((tmp_path / RESULT_NAME).read_text())
    assert validate_payload(payload) == []
    assert payload["benchmark"] == "attention_micro"
    assert payload["schema_version"] == SCHEMA_VERSION
    assert payload["contexts"] == [64, 128]
    assert "context" in table.render()


def test_units_and_series_shapes(tmp_path):
    _tiny_run(tmp_path)
    payload = json.loads((tmp_path / RESULT_NAME).read_text())
    assert set(payload["units"]) >= {"context", "decode_s", "prefill_s",
                                     "speedup"}
    for name in BACKENDS:
        for phase in ("decode_s", "prefill_s"):
            values = payload["backends"][name][phase]
            assert len(values) == len(payload["contexts"])
            assert all(t > 0 for t in values)
    for key in ("decode_fast_vs_reference", "prefill_fast_vs_reference"):
        assert len(payload["speedup"][key]) == len(payload["contexts"])


def test_contexts_deduplicated_and_sorted(tmp_path):
    _tiny_run(tmp_path, contexts=(128, 64, 128))
    payload = json.loads((tmp_path / RESULT_NAME).read_text())
    assert payload["contexts"] == [64, 128]
    contexts = np.asarray(payload["contexts"])
    assert (np.diff(contexts) > 0).all()


def test_validate_payload_flags_problems(tmp_path):
    _tiny_run(tmp_path)
    payload = json.loads((tmp_path / RESULT_NAME).read_text())
    del payload["backends"]["hybrid_fast"]
    payload["contexts"] = payload["contexts"][::-1]
    problems = validate_payload(payload)
    assert any("hybrid_fast" in p for p in problems)
    assert any("increasing" in p for p in problems)
    assert validate_payload({}) != []


def test_cli_main(tmp_path, capsys):
    rc = main(["--contexts", "64", "--repeats", "1", "--window", "16",
               "--n-sink", "4", "--top-k", "8", "--n-q-heads", "4",
               "--n-kv-heads", "2", "--head-dim", "16", "--block-size", "32",
               "--out-dir", str(tmp_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "attention microbenchmark" in out
    assert (tmp_path / RESULT_NAME).exists()
