"""Smoke test for the attention microbenchmark (`python -m repro.bench.micro`).

Runs the real benchmark at a tiny configuration and validates the
``BENCH_attention.json`` schema v2: required keys, units, per-backend
series lengths, ``null`` prefill entries for quadratic backends above the
reference cap, per-backend speedup curves, and a strictly increasing
context axis.
"""

import json

import numpy as np

from repro.bench.micro import (BACKENDS, QUADRATIC_PREFILL, RESULT_NAME,
                               SCHEMA_VERSION, main, run_micro,
                               validate_payload)


def _tiny_run(tmp_path, contexts=(64, 128), **overrides):
    kwargs = dict(contexts=contexts, repeats=1, window=16, n_sink=4,
                  top_k=8, n_q_heads=4, n_kv_heads=2, head_dim=16,
                  block_size=32, prefill_tile=64,
                  max_reference_context=1 << 20, out_dir=tmp_path)
    kwargs.update(overrides)
    return run_micro(**kwargs)


def test_writes_valid_payload(tmp_path):
    table = _tiny_run(tmp_path)
    payload = json.loads((tmp_path / RESULT_NAME).read_text())
    assert validate_payload(payload) == []
    assert payload["benchmark"] == "attention_micro"
    assert payload["schema_version"] == SCHEMA_VERSION == 2
    assert payload["contexts"] == [64, 128]
    assert "context" in table.render()


def test_units_and_series_shapes(tmp_path):
    _tiny_run(tmp_path)
    payload = json.loads((tmp_path / RESULT_NAME).read_text())
    assert set(payload["units"]) >= {"context", "decode_s", "prefill_s",
                                     "speedup"}
    for name in BACKENDS:
        for phase in ("decode_s", "prefill_s"):
            values = payload["backends"][name][phase]
            assert len(values) == len(payload["contexts"])
            assert all(t > 0 for t in values)
    for phase in ("decode", "prefill"):
        curves = payload["speedup"][phase]
        assert set(curves) == set(BACKENDS) - {"hybrid_reference"}
        for values in curves.values():
            assert len(values) == len(payload["contexts"])


def test_reference_cap_nulls_quadratic_prefill(tmp_path):
    """Above the cap, quadratic prefill entries (and their speedups) null."""
    _tiny_run(tmp_path, max_reference_context=64)
    payload = json.loads((tmp_path / RESULT_NAME).read_text())
    assert validate_payload(payload) == []
    for name in QUADRATIC_PREFILL:
        prefill = payload["backends"][name]["prefill_s"]
        assert prefill[0] is not None and prefill[1] is None
    # tiled/antidiag/sliding prefill series stay complete past the cap
    for name in set(BACKENDS) - set(QUADRATIC_PREFILL):
        assert all(t is not None
                   for t in payload["backends"][name]["prefill_s"])
    assert payload["speedup"]["prefill"]["hybrid_tiled"][1] is None
    # decode series are never capped
    for name in BACKENDS:
        assert all(t is not None
                   for t in payload["backends"][name]["decode_s"])


def test_contexts_deduplicated_and_sorted(tmp_path):
    _tiny_run(tmp_path, contexts=(128, 64, 128))
    payload = json.loads((tmp_path / RESULT_NAME).read_text())
    assert payload["contexts"] == [64, 128]
    contexts = np.asarray(payload["contexts"])
    assert (np.diff(contexts) > 0).all()


def test_validate_payload_flags_problems(tmp_path):
    _tiny_run(tmp_path)
    payload = json.loads((tmp_path / RESULT_NAME).read_text())
    del payload["backends"]["hybrid_fast"]
    payload["contexts"] = payload["contexts"][::-1]
    payload["backends"]["hybrid_antidiag"]["prefill_s"][0] = None
    problems = validate_payload(payload)
    assert any("hybrid_fast" in p for p in problems)
    assert any("increasing" in p for p in problems)
    assert any("hybrid_antidiag" in p and "null" in p for p in problems)
    assert validate_payload({}) != []


def test_validate_payload_rejects_wrong_schema_version(tmp_path):
    _tiny_run(tmp_path)
    payload = json.loads((tmp_path / RESULT_NAME).read_text())
    payload["schema_version"] = 1
    assert any("schema_version" in p for p in validate_payload(payload))


def test_cli_main(tmp_path, capsys):
    rc = main(["--contexts", "64", "--repeats", "1", "--window", "16",
               "--n-sink", "4", "--top-k", "8", "--n-q-heads", "4",
               "--n-kv-heads", "2", "--head-dim", "16", "--block-size", "32",
               "--prefill-tile", "64", "--out-dir", str(tmp_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "attention microbenchmark" in out
    assert (tmp_path / RESULT_NAME).exists()
