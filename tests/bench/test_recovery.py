"""Smoke test for the crash-recovery benchmark
(`python -m repro.bench.recovery`).

Runs the real kill-and-recover measurement at a tiny configuration and
validates the ``BENCH_recovery.json`` schema: the recovery path beats
recompute, the replay accounting is populated, and the recovered token
streams are bit-identical to the uninterrupted run.
"""

import json

import pytest

from repro.bench.recovery import (RESULT_NAME, SCHEMA_VERSION,
                                  run_recovery, validate_payload)


@pytest.fixture(scope="module")
def payload(tmp_path_factory):
    out = tmp_path_factory.mktemp("recovery")
    run_recovery(n_requests=3, output_tokens=10, snapshot_every=4,
                 seed=0, out_dir=out)
    return json.loads((out / RESULT_NAME).read_text())


def test_writes_valid_payload(payload):
    assert validate_payload(payload) == []
    assert payload["benchmark"] == "recovery"
    assert payload["schema_version"] == SCHEMA_VERSION


def test_recovery_beats_recompute(payload):
    recovery = payload["recovery"]
    assert recovery["speedup_vs_recompute"] > 1.0
    assert recovery["recovery_s"] \
        == recovery["snapshot_load_s"] + recovery["replay_s"]


def test_replay_accounting_is_coherent(payload):
    recovery = payload["recovery"]
    crash = payload["crash"]
    assert crash["died_at_step"] == crash["kill_step"]
    # The resume point reached by replay is exactly the crash step.
    assert recovery["snapshot_step"] + recovery["steps_replayed"] \
        == crash["kill_step"]
    assert recovery["tokens_replayed"] >= 0
    assert not recovery["stale_wal"]


def test_outputs_bit_identical(payload):
    identity = payload["identity"]
    assert identity["outputs_bit_identical"] is True
    assert identity["sessions"] == 3
    assert identity["tokens_compared"] \
        == payload["uninterrupted"]["tokens_generated"]


def test_validator_rejects_regressions(payload):
    broken = json.loads(json.dumps(payload))
    broken["recovery"]["speedup_vs_recompute"] = 0.8
    assert any("beat recompute" in p for p in validate_payload(broken))

    broken = json.loads(json.dumps(payload))
    broken["identity"]["outputs_bit_identical"] = False
    assert any("bit-identical" in p for p in validate_payload(broken))

    broken = json.loads(json.dumps(payload))
    broken["config"]["charged_context"] = 1024
    assert any("64k" in p for p in validate_payload(broken))

    broken = json.loads(json.dumps(payload))
    broken["crash"]["kill_step"] = broken["uninterrupted"]["steps"] + 5
    assert any("beyond" in p for p in validate_payload(broken))
