"""Fast integration tests for the analytical benchmark runners.

The perf-model figures (7, 8, 9, tables, power) run in milliseconds, so we
exercise them fully; the algorithm figures (3, 4, 10) need trained models
and run in the benchmark suite instead — here we only test their plumbing.
"""

import numpy as np
import pytest

from repro.bench.fig7 import best_point, headline_speedups, run_fig7
from repro.bench.fig8 import run_fig8
from repro.bench.fig9 import run_fig9
from repro.bench.spec_tables import run_power_area, run_table1, run_table2
from repro.llm.config import LLAMA3_1B, LLAMA3_8B


class TestFig7:
    def test_grid_covers_systems_and_contexts(self):
        table = run_fig7(models=[LLAMA3_1B], contexts=[8192, 1_048_576])
        systems = {row["system"] for row in table.rows}
        assert systems == {"1-GPU", "2-GPU", "AttAcc", "LongSight"}
        assert len(table.rows) == 2 * 4

    def test_oom_marked_none(self):
        table = run_fig7(models=[LLAMA3_8B], contexts=[1_048_576])
        by_system = {row["system"]: row for row in table.rows}
        assert by_system["1-GPU"]["throughput_tps"] is None
        assert by_system["LongSight"]["throughput_tps"] is not None

    def test_longsight_wins_long_context(self):
        table = run_fig7(models=[LLAMA3_1B], contexts=[524288])
        by_system = {row["system"]: row for row in table.rows}
        assert by_system["LongSight"]["throughput_tps"] > \
            by_system["1-GPU"]["throughput_tps"]

    def test_headlines_both_models(self):
        for config in (LLAMA3_1B, LLAMA3_8B):
            h = headline_speedups(config)
            assert h["throughput_ratio"] > 1.0
            assert h["per_user_latency_ratio"] > 1.0


class TestFig8:
    def test_rows_and_columns(self):
        table = run_fig8(models=[LLAMA3_8B], contexts=[32768, 1_048_576])
        assert len(table.rows) == 4  # 2 contexts x 2 scenarios
        for row in table.rows:
            comp_sum = sum(row[c] for c in
                           ("address_gen", "filter", "bitmap_read", "score",
                            "rank", "value_read"))
            assert row["total"] == pytest.approx(comp_sum)

    def test_value_read_dominates_short_context(self):
        table = run_fig8(models=[LLAMA3_8B], contexts=[8192])
        single = next(r for r in table.rows if r["scenario"] == "single")
        assert single["value_read"] > single["score"]

    def test_score_dominates_long_context(self):
        table = run_fig8(models=[LLAMA3_8B], contexts=[1_048_576])
        single = next(r for r in table.rows if r["scenario"] == "single")
        assert single["score"] > single["value_read"]


class TestFig9:
    def test_bottleneck_shift(self):
        table = run_fig9(models=[LLAMA3_1B], contexts=[8192])
        by_users = {row["users"]: row for row in table.rows}
        users = sorted(by_users)
        assert by_users[users[0]]["bottleneck"] == "GPU"
        assert by_users[users[-1]]["bottleneck"] in ("DReX", "CXL")


class TestSpecTables:
    def test_table1_fields(self):
        table = run_table1()
        fields = {row["field"] for row in table.rows}
        assert {"attention", "query/KV heads", "head dim", "layers"} <= fields

    def test_table2_headline_bandwidths(self):
        table = run_table2()
        values = {(r["device"], r["field"]): r["value"] for r in table.rows}
        assert values[("DReX", "NMA bandwidth")] == "1.10 TB/s"
        assert values[("DReX", "PFU bandwidth")] == "104.9 TB/s"
        assert values[("DReX", "PFUs")] == 8192

    def test_power_area_matches_paper(self):
        table = run_power_area()
        total = next(r for r in table.rows
                     if r["component"] == "DReX total")
        assert total["value"] == pytest.approx(158.2, abs=0.1)


class TestAlgoPlumbing:
    def test_variant_configs(self):
        from repro.bench import algo

        sparse = algo.variant_config("sparse", 16)
        assert sparse.window == 1 and sparse.n_sink == 0
        hybrid = algo.variant_config("hybrid", 16)
        assert hybrid.window == algo.WINDOW and not hybrid.use_itq
        itq = algo.variant_config("hybrid+itq", 16)
        assert itq.use_itq
        with pytest.raises(ValueError):
            algo.variant_config("nope", 16)

    def test_scaled_constants(self):
        from repro.bench import algo

        assert algo.WINDOW * algo.SCALE == 1024
        assert algo.TOP_K_LARGE * algo.SCALE == 1024
        assert algo.TOP_K_SMALL * algo.SCALE == 128
