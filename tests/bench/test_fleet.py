"""Smoke test for the fleet benchmark (`python -m repro.bench.fleet`).

Runs the real worker-count sweep at a tiny configuration and validates
the ``BENCH_fleet.json`` schema: axis starts at the single-engine
baseline, multi-worker points beat it on throughput, the shared-prefix
workload produces cache hits, and the fairness ratio stays bounded.
"""

import json

import pytest

from repro.bench.fleet import (RESULT_NAME, SCHEMA_VERSION, fleet_workload,
                               run_fleet, validate_payload)


@pytest.fixture(scope="module")
def payload(tmp_path_factory):
    out = tmp_path_factory.mktemp("fleet")
    run_fleet(workers_axis=(1, 2), n_steady=6, n_burst=6, seed=0,
              out_dir=out)
    return json.loads((out / RESULT_NAME).read_text())


def test_writes_valid_payload(payload):
    assert validate_payload(payload) == []
    assert payload["benchmark"] == "fleet"
    assert payload["schema_version"] == SCHEMA_VERSION
    assert payload["workers_axis"] == [1, 2]


def test_fleet_beats_single_engine(payload):
    base, fleet = payload["sweep"]
    assert base["workers"] == 1 and fleet["workers"] == 2
    assert fleet["throughput_tps"] > base["throughput_tps"]


def test_shared_prefix_workload_hits_cache(payload):
    for point in payload["sweep"]:
        assert point["prefix"]["hits"] > 0
        assert 0 < point["prefix"]["hit_rate"] <= 1


def test_tenant_slos_reported_and_bounded(payload):
    for point in payload["sweep"]:
        for tenant in ("steady", "burst"):
            summary = point["tenants"][tenant]
            assert summary["requests"] > 0
            assert summary["ttft_p99_s"] >= summary["ttft_p50_s"]
    fairness = payload["fairness"]
    assert fairness["degradation_ratio"] <= fairness["limit"]


def test_validator_rejects_regressions(payload):
    broken = json.loads(json.dumps(payload))
    broken["sweep"][1]["throughput_tps"] = \
        broken["sweep"][0]["throughput_tps"] * 0.5
    assert any("does not beat" in p for p in validate_payload(broken))

    broken = json.loads(json.dumps(payload))
    broken["sweep"][0]["prefix"]["hits"] = 0
    assert any("zero prefix-cache hits" in p
               for p in validate_payload(broken))

    broken = json.loads(json.dumps(payload))
    broken["fairness"]["degradation_ratio"] = \
        broken["fairness"]["limit"] + 1
    assert any("weighted admission failed" in p
               for p in validate_payload(broken))


def test_axis_must_start_at_baseline(tmp_path):
    with pytest.raises(ValueError):
        run_fleet(workers_axis=(2, 4), out_dir=tmp_path)
    with pytest.raises(ValueError):
        run_fleet(workers_axis=(1,), out_dir=tmp_path)


def test_fairness_ab_traces_share_steady_stream():
    with_burst = fleet_workload(4, 4, 64, seed=3)
    without = fleet_workload(4, 4, 64, seed=3, include_burst=False)
    steady_a = [r for r in with_burst if r.tenant == "steady"]
    assert len(without) == len(steady_a) == 4
    for a, b in zip(steady_a, without):
        assert a.arrival_s == b.arrival_s
        assert (a.prompt == b.prompt).all()
