"""Smoke test for the chaos benchmark (`python -m repro.bench.chaos`).

Runs the real sweep at a tiny configuration and validates the
``BENCH_chaos.json`` schema: required keys, >= 3 strictly increasing
fault-rate points, per-system series lengths, and the dense-fallback
completion guarantee at every rate.
"""

import json

import pytest

from repro.bench.chaos import (RESULT_NAME, SCHEMA_VERSION, SERVING_SYSTEMS,
                               WORKLOADS, main, run_chaos, validate_payload)

pytestmark = pytest.mark.chaos


def _tiny_run(tmp_path, rates=(0.0, 0.5, 1.0)):
    return run_chaos(rates=rates, n_sessions=4, n_tokens=40, seed=0,
                     out_dir=tmp_path)


def test_writes_valid_payload(tmp_path):
    table = _tiny_run(tmp_path)
    payload = json.loads((tmp_path / RESULT_NAME).read_text())
    assert validate_payload(payload) == []
    assert payload["benchmark"] == "chaos"
    assert payload["schema_version"] == SCHEMA_VERSION
    assert payload["fault_rates"] == [0.0, 0.5, 1.0]
    assert "fault_rate" in table.render()


def test_series_shapes_and_guarantees(tmp_path):
    _tiny_run(tmp_path)
    payload = json.loads((tmp_path / RESULT_NAME).read_text())
    rates = payload["fault_rates"]
    for workload in WORKLOADS:
        for name in SERVING_SYSTEMS:
            points = payload["serving"][workload][name]
            assert len(points) == len(rates)
    longsight = payload["serving"]["steady"]["LongSight"]
    assert longsight[0]["degraded_token_fraction"] == 0.0
    assert longsight[-1]["degraded_token_fraction"] == 1.0
    assert all(point["completed"] for point in payload["functional"])
    assert payload["functional"][-1]["degraded_token_fraction"] == 1.0


def test_rates_deduplicated_sorted_and_minimum(tmp_path):
    _tiny_run(tmp_path, rates=(1.0, 0.0, 0.5, 1.0))
    payload = json.loads((tmp_path / RESULT_NAME).read_text())
    assert payload["fault_rates"] == [0.0, 0.5, 1.0]
    with pytest.raises(ValueError):
        run_chaos(rates=(0.0, 1.0), out_dir=tmp_path)


def test_validate_payload_flags_problems(tmp_path):
    _tiny_run(tmp_path)
    payload = json.loads((tmp_path / RESULT_NAME).read_text())
    del payload["serving"]["steady"]["LongSight"]
    payload["fault_rates"] = payload["fault_rates"][::-1]
    payload["functional"][0]["completed"] = False
    problems = validate_payload(payload)
    assert any("LongSight" in p for p in problems)
    assert any("increasing" in p for p in problems)
    assert any("fallback" in p for p in problems)
    assert validate_payload({}) != []


def test_seeded_reproducibility(tmp_path):
    _tiny_run(tmp_path)
    first = json.loads((tmp_path / RESULT_NAME).read_text())
    _tiny_run(tmp_path)
    second = json.loads((tmp_path / RESULT_NAME).read_text())
    assert first == second


def test_cli_main(tmp_path, capsys):
    rc = main(["--rates", "0", "0.5", "1", "--n-sessions", "3",
               "--n-tokens", "40", "--out-dir", str(tmp_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "chaos sweep" in out
    assert (tmp_path / RESULT_NAME).exists()
