"""Smoke test for the serving benchmark (`python -m repro.bench.serve`).

Runs the real sweep at a tiny configuration and validates the
``BENCH_serve.json`` schema: required keys, strictly increasing axes,
per-system series lengths, percentile sanity (p99 >= p50), pool
accounting, and the service guarantee (every non-rejected request got
its full output).
"""

import json

import pytest

from repro.bench.serve import (RESULT_NAME, SCHEMA_VERSION, SYSTEM_NAMES,
                               main, run_serve, validate_payload)


def _tiny_run(tmp_path, rates=(2.0, 200.0), contexts=(8192, 65536)):
    return run_serve(rates=rates, contexts=contexts, n_requests=3,
                     prompt_tokens=16, output_tokens=4, seed=0,
                     out_dir=tmp_path)


def test_writes_valid_payload(tmp_path):
    table = _tiny_run(tmp_path)
    payload = json.loads((tmp_path / RESULT_NAME).read_text())
    assert validate_payload(payload) == []
    assert payload["benchmark"] == "serve"
    assert payload["schema_version"] == SCHEMA_VERSION
    assert payload["arrival_rates"] == [2.0, 200.0]
    assert payload["contexts"] == [8192, 65536]
    assert "throughput_tps" in table.render()


def test_series_shapes_and_guarantees(tmp_path):
    _tiny_run(tmp_path)
    payload = json.loads((tmp_path / RESULT_NAME).read_text())
    n_points = len(payload["arrival_rates"]) * len(payload["contexts"])
    for name in SYSTEM_NAMES:
        points = payload["sweep"][name]
        assert len(points) == n_points
        for point in points:
            assert point["all_tokens_served"]
            assert point["ttft_p99_s"] >= point["ttft_p50_s"]
            assert point["tpot_p99_s"] >= point["tpot_p50_s"]
            assert 0 <= point["pool"]["high_watermark"] \
                <= point["pool"]["n_blocks"]


def test_axes_deduplicated_sorted_and_minimum(tmp_path):
    _tiny_run(tmp_path, rates=(200.0, 2.0, 200.0),
              contexts=(65536, 8192, 65536))
    payload = json.loads((tmp_path / RESULT_NAME).read_text())
    assert payload["arrival_rates"] == [2.0, 200.0]
    assert payload["contexts"] == [8192, 65536]
    with pytest.raises(ValueError):
        run_serve(rates=(2.0,), out_dir=tmp_path)
    with pytest.raises(ValueError):
        run_serve(contexts=(8192,), out_dir=tmp_path)


def test_validation_catches_corruption(tmp_path):
    _tiny_run(tmp_path)
    payload = json.loads((tmp_path / RESULT_NAME).read_text())
    assert validate_payload({}) != []
    bad = json.loads(json.dumps(payload))
    bad["sweep"]["longsight"][0]["all_tokens_served"] = False
    assert any("service guarantee" in p for p in validate_payload(bad))
    bad = json.loads(json.dumps(payload))
    bad["sweep"]["dense"][0]["ttft_p50_s"] = -1.0
    assert validate_payload(bad) != []
    bad = json.loads(json.dumps(payload))
    bad["arrival_rates"] = [200.0, 2.0]
    assert any("increasing" in p for p in validate_payload(bad))


def test_cli_main(tmp_path, capsys):
    exit_code = main(["--rates", "2", "200", "--contexts", "8192", "65536",
                      "--n-requests", "2", "--prompt-tokens", "12",
                      "--output-tokens", "3",
                      "--out-dir", str(tmp_path)])
    assert exit_code == 0
    out = capsys.readouterr().out
    assert RESULT_NAME in out
    payload = json.loads((tmp_path / RESULT_NAME).read_text())
    assert validate_payload(payload) == []
