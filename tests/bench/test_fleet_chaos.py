"""Smoke test for the fleet resilience benchmark
(`python -m repro.bench.fleet_chaos`).

Runs the real gray-failure sweep and overload A/B at a small
configuration and validates the ``BENCH_fleet_chaos.json`` schema:
every gray kind finishes bit-identical to the fault-free reference with
availability intact, slow/stuck workers actually fail over with a
measured latency, and the brownout ladder sheds less than the no-ladder
baseline with every browned-out token stage-attributed.
"""

import json

import pytest

from repro.bench.fleet_chaos import (RESULT_NAME, SCHEMA_VERSION,
                                     run_fleet_chaos, validate_payload)
from repro.system.faults import GRAY_KINDS


@pytest.fixture(scope="module")
def payload(tmp_path_factory):
    out = tmp_path_factory.mktemp("fleet_chaos")
    run_fleet_chaos(seed=0, n_steady=6, n_burst=4, output_tokens=8,
                    n_workers=4, blocks_per_worker=64, snapshot_every=4,
                    out_dir=out)
    return json.loads((out / RESULT_NAME).read_text())


def test_writes_valid_payload(payload):
    assert validate_payload(payload) == []
    assert payload["benchmark"] == "fleet_chaos"
    assert payload["schema_version"] == SCHEMA_VERSION


def test_gray_sweep_covers_every_kind_bit_identically(payload):
    kinds = {point["kind"]: point for point in payload["gray"]["kinds"]}
    assert set(kinds) == set(GRAY_KINDS)
    for point in kinds.values():
        assert point["bit_identical"]
        assert point["availability"] >= 0.99


def test_slow_and_stuck_fail_over_with_measured_latency(payload):
    kinds = {point["kind"]: point for point in payload["gray"]["kinds"]}
    for kind in ("slow_worker", "stuck_worker"):
        assert kinds[kind]["failovers"] >= 1
        assert kinds[kind]["failover_latency_max_s"] > 0.0
    assert kinds["flapping_worker"]["failovers"] == 0
    assert kinds["flapping_worker"]["worker_suspects"] >= 2


def test_ladder_sheds_less_than_baseline(payload):
    brownout = payload["brownout"]
    assert brownout["baseline"]["shed_fraction"] > 0.0
    assert brownout["ladder"]["shed_fraction"] \
        < brownout["baseline"]["shed_fraction"]
    assert brownout["baseline"]["brownout_tokens"] == 0
    assert brownout["ladder"]["brownout_tokens"] >= 1
    assert brownout["attributed_tokens_consistent"]


def test_validator_catches_mutations(payload):
    broken = json.loads(json.dumps(payload))
    broken["gray"]["kinds"][0]["bit_identical"] = False
    assert any("diverge" in p for p in validate_payload(broken))
    broken = json.loads(json.dumps(payload))
    broken["brownout"]["ladder"]["shed_fraction"] = 1.0
    assert any("did not improve" in p for p in validate_payload(broken))
    broken = json.loads(json.dumps(payload))
    del broken["gray"]
    assert any("missing key" in p for p in validate_payload(broken))
