"""Smoke tests for ``python -m repro.bench.obs_overhead`` and the serve
bench's ``--trace-out`` flag.

The <5% overhead *gate* lives in ``tests/obs/test_overhead.py`` at the
real 512-step configuration; here we run tiny configurations and check
plumbing: schema, CLI exit codes, corruption detection, and that the
emitted Chrome trace explains at least 95% of the instrumented wall time.
"""

import json

import pytest

from repro.bench.obs_overhead import (RESULT_NAME, SCHEMA_VERSION, main,
                                      run_obs_overhead, validate_payload)
from repro.bench.serve import main as serve_main


def test_writes_valid_payload(tmp_path):
    table = run_obs_overhead(steps=16, reps=1, out_dir=tmp_path)
    payload = json.loads((tmp_path / RESULT_NAME).read_text())
    assert validate_payload(payload) == []
    assert payload["benchmark"] == "obs_overhead"
    assert payload["schema_version"] == SCHEMA_VERSION
    assert payload["config"]["steps"] == 16
    rendered = table.render()
    for mode in ("baseline", "noop", "enabled"):
        assert mode in rendered


def test_validation_catches_corruption(tmp_path):
    run_obs_overhead(steps=16, reps=1, out_dir=tmp_path)
    payload = json.loads((tmp_path / RESULT_NAME).read_text())
    assert validate_payload({}) != []
    bad = json.loads(json.dumps(payload))
    bad["results"]["baseline_s"] = 0.0
    assert any("baseline_s" in p for p in validate_payload(bad))
    bad = json.loads(json.dumps(payload))
    del bad["results"]["noop_overhead_frac"]
    assert any("noop_overhead_frac" in p for p in validate_payload(bad))
    bad = json.loads(json.dumps(payload))
    bad["results"]["noop_overhead_frac"] = -0.9
    assert any("negative" in p for p in validate_payload(bad))


def test_rejects_bad_arguments(tmp_path):
    with pytest.raises(ValueError):
        run_obs_overhead(steps=0, out_dir=tmp_path)
    with pytest.raises(ValueError):
        run_obs_overhead(reps=0, out_dir=tmp_path)


def test_cli_main(tmp_path, capsys):
    exit_code = main(["--steps", "16", "--reps", "1",
                      "--out-dir", str(tmp_path)])
    assert exit_code == 0
    assert RESULT_NAME in capsys.readouterr().out
    payload = json.loads((tmp_path / RESULT_NAME).read_text())
    assert validate_payload(payload) == []


def test_serve_trace_out_covers_wall_time(tmp_path, capsys):
    """The ISSUE's acceptance criterion for ``--trace-out``: a valid
    Chrome trace whose root spans cover >= 95% of the traced wall time."""
    trace_path = tmp_path / "trace.json"
    exit_code = serve_main(
        ["--rates", "2", "50", "--contexts", "8192", "65536",
         "--n-requests", "2", "--prompt-tokens", "12",
         "--output-tokens", "3", "--out-dir", str(tmp_path),
         "--trace-out", str(trace_path)])
    assert exit_code == 0
    trace = json.loads(trace_path.read_text())
    events = trace["traceEvents"]
    assert events and all(e["ph"] == "X" for e in events)
    assert {"bench.serve_point", "serve.run", "engine.step"} <= \
        {e["name"] for e in events}
    payload = json.loads((tmp_path / "BENCH_serve.json").read_text())
    assert payload["trace"]["n_spans"] == len(events)
    assert payload["trace"]["root_coverage"] >= 0.95
