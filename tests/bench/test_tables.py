"""Results-table harness tests."""

import json

import pytest

from repro.bench.tables import Table, format_si


def test_render_alignment():
    t = Table("demo", ["name", "value"])
    t.add_row(name="alpha", value=1.5)
    t.add_row(name="b", value=None)
    out = t.render()
    assert "== demo ==" in out
    lines = out.splitlines()
    assert len({len(line) for line in lines[1:]}) <= 2  # aligned widths
    assert "-" in lines[-1] or "alpha" in out


def test_unknown_column_rejected():
    t = Table("demo", ["a"])
    with pytest.raises(KeyError):
        t.add_row(b=1)


def test_float_formatting():
    t = Table("demo", ["v"])
    assert t._fmt(1234567.0) == "1.23e+06"
    assert t._fmt(3.14159) == "3.142"
    assert t._fmt(None) == "-"
    assert t._fmt(float("nan")) == "-"
    assert t._fmt(7) == "7"


def test_save_round_trip(tmp_path):
    t = Table("My Title", ["a", "b"], note="a note")
    t.add_row(a=1, b="x")
    path = t.save(tmp_path)
    assert path.exists()
    data = json.loads((tmp_path / "my_title.json").read_text())
    assert data["rows"] == [{"a": 1, "b": "x"}]


def test_format_si():
    assert format_si(1_500_000) == "1.5M"
    assert format_si(2_000) == "2K"
    assert format_si(3_200_000_000) == "3.2G"
    assert format_si(12.0) == "12"
    assert format_si(None) == "-"
