"""Fault-plan and fault-injector unit tests."""

import dataclasses

import numpy as np
import pytest

from repro.errors import OffloadTimeoutError, QueueFullError
from repro.system.faults import (FAULT_KINDS, FaultInjectingDevice,
                                 FaultInjector, FaultPlan, make_faulty_device)

pytestmark = pytest.mark.chaos


class TestFaultPlan:
    def test_default_is_healthy(self):
        plan = FaultPlan.none()
        assert not plan.any_faults
        assert all(plan.rate(kind) == 0.0 for kind in FAULT_KINDS)

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(cxl_timeout_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(queue_full_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(cxl_degradation_factor=0.5)
        with pytest.raises(ValueError):
            FaultPlan(kso_bits_flipped=0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.none().rate("gamma_rays")

    def test_uniform_and_total_failure(self):
        uniform = FaultPlan.uniform(0.3, seed=9)
        for kind in ("queue_full", "response_buffer", "cxl_timeout",
                     "cxl_degraded", "nma_stall"):
            assert uniform.rate(kind) == 0.3
        assert uniform.rate("kso_corruption") == 0.0
        total = FaultPlan.total_failure()
        assert total.cxl_timeout_rate == 1.0 and total.any_faults


class TestFaultInjector:
    def test_zero_rate_never_draws(self):
        """A zero-rate kind must not consume RNG state, so plans that do
        not use a fault kind are unaffected by its injection point."""
        injector = FaultInjector(FaultPlan.none(seed=3))
        before = injector.rng.bit_generator.state["state"]["state"]
        for kind in FAULT_KINDS:
            assert not injector.fires(kind)
        after = injector.rng.bit_generator.state["state"]["state"]
        assert before == after
        assert injector.total_fired == 0

    def test_same_seed_same_sequence(self):
        plan = FaultPlan.uniform(0.5, seed=11)
        a = FaultInjector(plan)
        b = FaultInjector(plan)
        seq_a = [a.fires("cxl_timeout") for _ in range(200)]
        seq_b = [b.fires("cxl_timeout") for _ in range(200)]
        assert seq_a == seq_b
        assert a.counts == b.counts
        assert 0 < a.counts["cxl_timeout"] < 200

    def test_rate_one_always_fires(self):
        injector = FaultInjector(FaultPlan.total_failure())
        assert all(injector.fires("cxl_timeout") for _ in range(50))


class TestFaultInjectingDevice:
    def _device(self, plan, tiny_config):
        from repro.core.config import LongSightConfig
        cfg = LongSightConfig(window=8, n_sink=4, top_k=8, thresholds=5)
        device = make_faulty_device(tiny_config, cfg, plan=plan)
        device.register_user(0)
        return device, cfg

    def _fill(self, device, tiny_config, n=16, seed=0):
        rng = np.random.default_rng(seed)
        for layer in range(tiny_config.n_layers):
            for kv_head in range(tiny_config.n_kv_heads):
                device.write_kv(
                    0, layer, kv_head,
                    rng.normal(size=(n, tiny_config.head_dim)),
                    rng.normal(size=(n, tiny_config.head_dim)))

    def _request(self, tiny_config, seed=1):
        from repro.drex.descriptors import RequestDescriptor
        rng = np.random.default_rng(seed)
        return RequestDescriptor(
            uid=0, layer=0,
            queries=rng.normal(size=(tiny_config.n_q_heads,
                                     tiny_config.head_dim)),
            top_k=8, dtype_bytes=tiny_config.dtype_bytes)

    def test_is_a_drex_device(self, tiny_config):
        device, _ = self._device(FaultPlan.none(), tiny_config)
        assert isinstance(device, FaultInjectingDevice)

    def test_timeout_injection(self, tiny_config):
        device, _ = self._device(FaultPlan.total_failure(), tiny_config)
        self._fill(device, tiny_config)
        with pytest.raises(OffloadTimeoutError):
            device.execute(self._request(tiny_config))

    def test_queue_full_injection(self, tiny_config):
        device, _ = self._device(FaultPlan(queue_full_rate=1.0), tiny_config)
        self._fill(device, tiny_config)
        with pytest.raises(QueueFullError):
            device.execute(self._request(tiny_config))

    def test_latency_faults_distort_only_latency(self, tiny_config):
        healthy, _ = self._device(FaultPlan.none(), tiny_config)
        stalled, _ = self._device(
            FaultPlan(nma_stall_rate=1.0, cxl_degraded_rate=1.0),
            tiny_config)
        self._fill(healthy, tiny_config)
        self._fill(stalled, tiny_config)
        ok = healthy.execute(self._request(tiny_config))
        slow = stalled.execute(self._request(tiny_config))
        # Same computed top-k, distorted latency.
        for h in range(tiny_config.n_q_heads):
            np.testing.assert_array_equal(slow.heads[h].indices,
                                          ok.heads[h].indices)
        assert slow.latency.total_ns \
            >= ok.latency.total_ns + stalled.injector.plan.nma_stall_ns

    def test_kso_corruption_persists_until_repaired(self, tiny_config):
        plan = FaultPlan(kso_corruption_rate=1.0, kso_bits_flipped=3)
        device, _ = self._device(plan, tiny_config)
        self._fill(device, tiny_config)
        assert device.corrupted_ksos(0, 0) == []
        device.execute(self._request(tiny_config))
        bad = device.corrupted_ksos(0, 0)
        assert bad, "corruption should be detectable by checksum"
        for kv_head in bad:
            device.repair_kso(0, 0, kv_head)
        assert device.corrupted_ksos(0, 0) == []

    def test_corrupt_kso_flips_distinct_bits(self, tiny_config):
        device, _ = self._device(FaultPlan.none(), tiny_config)
        self._fill(device, tiny_config)
        rng = np.random.default_rng(0)
        flips = device.corrupt_kso(0, 0, 0, rng, n_bits=5)
        assert flips == 5
        assert not device.kso_intact(0, 0, 0)
