"""Fault-aware serving-simulator tests."""

import numpy as np
import pytest

from repro.core.config import LongSightConfig
from repro.llm.config import LLAMA3_8B
from repro.system.baselines import SlidingWindowGpuSystem
from repro.system.engine import LongSightSystem
from repro.system.serving_sim import (ServingFaultModel, ServingSimulator,
                                      Session, poisson_workload)

pytestmark = pytest.mark.chaos


def _engine():
    return LongSightSystem(LongSightConfig(window=1024, n_sink=16,
                                           top_k=1024, use_itq=True))


def _sessions(n, prompt=32768, output=24, spacing=0.0):
    return [Session(session_id=i, arrival_s=i * spacing,
                    prompt_tokens=prompt, output_tokens=output)
            for i in range(n)]


class TestFaultModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            ServingFaultModel(offload_failure_rate=1.5)
        with pytest.raises(ValueError):
            ServingFaultModel(failures_to_backoff=0)
        with pytest.raises(ValueError):
            ServingFaultModel(backoff_s=-1.0)

    def test_any_faults(self):
        assert not ServingFaultModel().any_faults
        assert ServingFaultModel(offload_failure_rate=0.1).any_faults


class TestZeroFaultCompatibility:
    def test_zero_rate_matches_no_fault_model(self):
        """faults with rate 0 must not change the trajectory at all."""
        workload = lambda: poisson_workload(  # noqa: E731
            6, 2.0, 32768, 16, seed=3)
        base = ServingSimulator(_engine(), LLAMA3_8B).run(workload())
        faulted = ServingSimulator(
            _engine(), LLAMA3_8B,
            faults=ServingFaultModel(offload_failure_rate=0.0, seed=5),
        ).run(workload())
        assert faulted.sim_time_s == base.sim_time_s
        assert faulted.tokens_generated == base.tokens_generated
        assert faulted.degraded_tokens == 0
        assert faulted.total_backoffs == 0
        assert [s.finished_s for s in faulted.sessions] == \
            [s.finished_s for s in base.sessions]


class TestDegradation:
    def test_partial_rate_degrades_some_tokens(self):
        report = ServingSimulator(
            _engine(), LLAMA3_8B,
            faults=ServingFaultModel(offload_failure_rate=0.3, seed=7),
        ).run(_sessions(4))
        assert len(report.completed) == 4
        assert 0.0 < report.degraded_token_fraction < 1.0
        assert report.degraded_tokens == \
            sum(s.degraded_tokens for s in report.sessions)
        assert len(report.step_latency_samples) > 0
        assert report.p50_step_latency_s <= report.p99_step_latency_s

    def test_total_failure_completes_fully_degraded(self):
        """The acceptance anchor: at 100% offload failure every session
        still finishes (via the dense fallback) and every token degrades."""
        report = ServingSimulator(
            _engine(), LLAMA3_8B,
            faults=ServingFaultModel(offload_failure_rate=1.0, seed=0),
        ).run(_sessions(5))
        assert len(report.completed) == 5
        assert report.degraded_token_fraction == 1.0
        assert report.tokens_generated == 5 * 24

    def test_degraded_steps_are_cheaper(self):
        engine = _engine()
        contexts = [131072] * 4
        healthy = engine.step_latency_degraded_s(LLAMA3_8B, contexts,
                                                 [False] * 4)
        degraded = engine.step_latency_degraded_s(LLAMA3_8B, contexts,
                                                  [True] * 4)
        mixed = engine.step_latency_degraded_s(LLAMA3_8B, contexts,
                                               [True, True, False, False])
        assert healthy == engine.step_latency_s(LLAMA3_8B, contexts)
        assert degraded < healthy
        assert degraded <= mixed <= healthy


class TestBackoffAndShed:
    def test_backoff_reenters_admission(self):
        faults = ServingFaultModel(offload_failure_rate=1.0,
                                   failures_to_backoff=4, backoff_s=0.25,
                                   max_backoffs=100, seed=1)
        report = ServingSimulator(_engine(), LLAMA3_8B, faults=faults) \
            .run(_sessions(2, output=24))
        assert report.total_backoffs > 0
        assert len(report.completed) == 2
        assert all(s.offload_backoffs > 0 for s in report.sessions)
        assert not any(s.shed for s in report.sessions)
        assert report.availability == 1.0
        # Backoff time is real: completion is delayed past the no-backoff
        # trajectory.
        assert report.sim_time_s > faults.backoff_s

    def test_shed_after_max_backoffs(self):
        faults = ServingFaultModel(offload_failure_rate=1.0,
                                   failures_to_backoff=2, backoff_s=0.1,
                                   max_backoffs=1, seed=1)
        report = ServingSimulator(_engine(), LLAMA3_8B, faults=faults) \
            .run(_sessions(3, output=24))
        # Shed sessions still complete, pinned to the dense fallback.
        assert len(report.completed) == 3
        assert len(report.shed) == 3
        assert report.availability == 0.0
        assert all(s.offload_backoffs == 2 for s in report.sessions)

    def test_sliding_window_baseline_is_fault_immune(self):
        system = SlidingWindowGpuSystem(window=1024, n_sink=16)
        report = ServingSimulator(system, LLAMA3_8B).run(_sessions(4))
        assert len(report.completed) == 4
        assert report.degraded_token_fraction == 0.0


class TestReproducibility:
    def _run(self, seed):
        faults = ServingFaultModel(offload_failure_rate=0.4,
                                   failures_to_backoff=3, backoff_s=0.2,
                                   max_backoffs=2, seed=seed)
        report = ServingSimulator(_engine(), LLAMA3_8B, faults=faults) \
            .run(_sessions(5, spacing=0.2))
        return (report.sim_time_s, report.tokens_generated,
                report.degraded_tokens, report.total_backoffs,
                tuple(s.shed for s in report.sessions),
                tuple(s.finished_s for s in report.sessions))

    def test_same_seed_same_trajectory(self):
        assert self._run(9) == self._run(9)

    def test_different_seed_diverges(self):
        assert self._run(9)[2:] != self._run(10)[2:]
