"""Supervisor tests: retries, repair, degradation, and equivalences."""

import numpy as np
import pytest

from repro.core.config import LongSightConfig
from repro.core.hybrid import (LongSightAttention, SlidingWindowAttention)
from repro.core.metrics import FilterStats
from repro.drex.backend import DrexOffloadBackend
from repro.llm.model import Transformer
from repro.system.faults import FaultPlan
from repro.system.supervisor import (OffloadSupervisor, SupervisedOffloadBackend,
                                     SupervisorPolicy)

pytestmark = pytest.mark.chaos

CFG = LongSightConfig(window=8, n_sink=4, top_k=12, thresholds=5)


def _decode(tiny_config, backend, n_tokens=70, seed=5):
    model = Transformer(tiny_config, seed=seed)
    tokens = np.random.default_rng(21).integers(
        0, tiny_config.vocab_size, size=n_tokens)
    return model.forward_full(tokens, backend=backend, block_size=16)


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            SupervisorPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            SupervisorPolicy(backoff_multiplier=0.5)
        with pytest.raises(ValueError):
            SupervisorPolicy(jitter=1.0)


class TestZeroFaultEquivalence:
    """FaultPlan.none(): supervision must be an exact no-op."""

    def test_bit_identical_outputs_and_selections(self, tiny_config):
        plain = DrexOffloadBackend(tiny_config, CFG, flush_granularity=1)
        plain.selection_capture = {}
        reference = _decode(tiny_config, plain)

        supervised = SupervisedOffloadBackend(
            tiny_config, CFG, plan=FaultPlan.none(), flush_granularity=1)
        supervised.selection_capture = {}
        out = _decode(tiny_config, supervised)

        np.testing.assert_array_equal(out, reference)
        assert set(supervised.selection_capture) == \
            set(plain.selection_capture)
        for key, indices in plain.selection_capture.items():
            np.testing.assert_array_equal(
                supervised.selection_capture[key], indices)
        assert supervised.degraded_tokens == 0
        assert supervised.supervisor.stats.retries == 0
        assert supervised.injector.total_fired == 0

    def test_filter_stats_identical(self, tiny_config):
        stats_plain = FilterStats(tiny_config.n_layers,
                                  tiny_config.n_kv_heads)
        _decode(tiny_config, DrexOffloadBackend(
            tiny_config, CFG, flush_granularity=1, stats=stats_plain))
        stats_supervised = FilterStats(tiny_config.n_layers,
                                       tiny_config.n_kv_heads)
        _decode(tiny_config, SupervisedOffloadBackend(
            tiny_config, CFG, plan=FaultPlan.none(), flush_granularity=1,
            stats=stats_supervised))
        for field in ("candidates", "passed", "retrieved", "queries"):
            np.testing.assert_array_equal(
                getattr(stats_supervised, field),
                getattr(stats_plain, field))

    def test_matches_software_hybrid(self, tiny_config):
        software = _decode(tiny_config, LongSightAttention(CFG))
        supervised = _decode(tiny_config, SupervisedOffloadBackend(
            tiny_config, CFG, plan=FaultPlan.none(), flush_granularity=1))
        np.testing.assert_allclose(supervised, software, atol=1e-10)


class TestTotalFailure:
    """A dead device must degrade to dense sliding-window, not crash."""

    def test_completes_fully_degraded(self, tiny_config):
        backend = SupervisedOffloadBackend(
            tiny_config, CFG, plan=FaultPlan.total_failure(),
            flush_granularity=1)
        out = _decode(tiny_config, backend)
        assert np.isfinite(out).all()
        assert backend.degraded_token_fraction == 1.0
        assert backend.degraded_tokens == backend.sparse_token_attempts > 0
        assert len(backend.degraded_log) == backend.degraded_tokens
        stats = backend.supervisor.stats
        assert stats.degraded == backend.degraded_tokens
        assert stats.retries == \
            backend.degraded_tokens * backend.supervisor.policy.max_retries

    def test_equals_sliding_window_software(self, tiny_config):
        """With flush_granularity=1 the degraded dense region is exactly
        sinks + window, so the output must match the software baseline."""
        backend = SupervisedOffloadBackend(
            tiny_config, CFG, plan=FaultPlan.total_failure(),
            flush_granularity=1)
        degraded = _decode(tiny_config, backend)
        software = _decode(tiny_config, SlidingWindowAttention(
            window=CFG.window, n_sink=CFG.n_sink))
        np.testing.assert_allclose(degraded, software, atol=1e-10)


class TestRetriesAndRepair:
    def test_transient_faults_are_retried(self, tiny_config):
        backend = SupervisedOffloadBackend(
            tiny_config, CFG, plan=FaultPlan.uniform(0.3, seed=2),
            flush_granularity=1)
        out = _decode(tiny_config, backend)
        assert np.isfinite(out).all()
        stats = backend.supervisor.stats
        assert stats.retries > 0
        assert stats.succeeded > 0
        assert stats.backoff_ns > 0.0
        # Most tokens should survive via retry at a 30% transient rate
        # with 3 retries.
        assert backend.degraded_token_fraction < 0.5

    def test_backoff_grows_and_jitters(self):
        supervisor = OffloadSupervisor(device=None, policy=SupervisorPolicy(
            base_backoff_ns=1000.0, backoff_multiplier=2.0, jitter=0.25),
            seed=4)
        d0 = supervisor._backoff(0)
        d2 = supervisor._backoff(2)
        assert 750.0 <= d0 <= 1250.0
        assert 3000.0 <= d2 <= 5000.0

    def test_corruption_detected_and_repaired(self, tiny_config):
        plan = FaultPlan(kso_corruption_rate=0.5, kso_bits_flipped=3, seed=6)
        backend = SupervisedOffloadBackend(
            tiny_config, CFG, plan=plan, flush_granularity=1)
        out = _decode(tiny_config, backend)
        assert np.isfinite(out).all()
        stats = backend.supervisor.stats
        assert stats.corrupted_heads > 0
        assert stats.repairs == stats.corrupted_heads
        # Repair restores checksums: every store ends the run intact.
        for layer in range(tiny_config.n_layers):
            assert backend.device.corrupted_ksos(0, layer) == []

    def test_repaired_run_matches_healthy_run(self, tiny_config):
        """Sign repair reconstructs the exact signs, so a corrupted-then-
        repaired run selects the same keys as a healthy one — provided the
        retry budget is deep enough that no token ever degrades."""
        healthy = _decode(tiny_config, SupervisedOffloadBackend(
            tiny_config, CFG, plan=FaultPlan.none(), flush_granularity=1))
        backend = SupervisedOffloadBackend(
            tiny_config, CFG,
            plan=FaultPlan(kso_corruption_rate=0.3, kso_bits_flipped=3,
                           seed=6),
            policy=SupervisorPolicy(max_retries=16),
            flush_granularity=1)
        repaired = _decode(tiny_config, backend)
        assert backend.supervisor.stats.repairs > 0
        assert backend.degraded_tokens == 0
        np.testing.assert_array_equal(repaired, healthy)


class TestReproducibility:
    def _run(self, tiny_config, seed):
        backend = SupervisedOffloadBackend(
            tiny_config, CFG,
            plan=FaultPlan.uniform(0.4, seed=seed), flush_granularity=1)
        out = _decode(tiny_config, backend)
        return out, backend.supervisor.stats.as_dict(), \
            dict(backend.injector.counts), list(backend.degraded_log)

    def test_same_seed_same_everything(self, tiny_config):
        out_a, stats_a, counts_a, log_a = self._run(tiny_config, seed=13)
        out_b, stats_b, counts_b, log_b = self._run(tiny_config, seed=13)
        np.testing.assert_array_equal(out_a, out_b)
        assert stats_a == stats_b
        assert counts_a == counts_b
        assert log_a == log_b

    def test_different_seed_different_faults(self, tiny_config):
        _, _, counts_a, _ = self._run(tiny_config, seed=13)
        _, _, counts_b, _ = self._run(tiny_config, seed=14)
        assert counts_a != counts_b


class TestCapacityPressure:
    def test_flush_deferral_keeps_tokens_dense(self, tiny_config):
        backend = SupervisedOffloadBackend(
            tiny_config, CFG,
            plan=FaultPlan(capacity_pressure_rate=0.5, seed=8),
            flush_granularity=1)
        out = _decode(tiny_config, backend)
        assert np.isfinite(out).all()
        assert backend.supervisor.stats.flush_deferrals > 0
