"""Pareto utilities."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.system.sweep import ParetoPoint, grid, pareto_frontier, sweep

points_strategy = st.lists(
    st.tuples(st.floats(0, 100, allow_nan=False),
              st.floats(0, 100, allow_nan=False)),
    min_size=1, max_size=40)


def _points(pairs):
    return [ParetoPoint(x=x, y=y, label=str(i))
            for i, (x, y) in enumerate(pairs)]


def test_simple_frontier():
    points = _points([(1, 3), (2, 2), (3, 1), (1.5, 1.5)])
    frontier = pareto_frontier(points)
    assert {(p.x, p.y) for p in frontier} == {(1, 3), (2, 2), (3, 1)}


def test_dominated_point_removed():
    points = _points([(5, 5), (1, 1)])
    frontier = pareto_frontier(points)
    assert len(frontier) == 1 and frontier[0].x == 5


@given(points_strategy)
@settings(max_examples=50, deadline=None)
def test_frontier_properties(pairs):
    points = _points(pairs)
    frontier = pareto_frontier(points)
    assert frontier  # never empty for non-empty input
    # No frontier point dominates another.
    for a in frontier:
        for b in frontier:
            if a is not b:
                assert not (a.x >= b.x and a.y >= b.y
                            and (a.x > b.x or a.y > b.y))
    # Every input point is dominated-or-equal by some frontier point.
    for p in points:
        assert any(f.x >= p.x and f.y >= p.y for f in frontier)
    # Sorted by x ascending.
    xs = [p.x for p in frontier]
    assert xs == sorted(xs)


def test_grid():
    configs = grid(a=[1, 2], b=["x"])
    assert configs == [{"a": 1, "b": "x"}, {"a": 2, "b": "x"}]


def test_sweep_drops_none():
    configs = grid(v=[1, 2, 3])
    points = sweep(configs, lambda c: ParetoPoint(x=c["v"], y=0)
                   if c["v"] != 2 else None)
    assert [p.x for p in points] == [1, 3]
