"""Baseline serving-system model tests (Figure 7's comparators)."""

import numpy as np
import pytest

from repro.llm.config import LLAMA3_1B, LLAMA3_8B
from repro.system.baselines import (
    AttAccSystem,
    DenseGpuSystem,
    ServingPoint,
    SlidingWindowGpuSystem,
)


class TestServingPoint:
    def test_derived_metrics(self):
        point = ServingPoint("x", "m", 1024, n_users=10,
                             token_latency_s=0.02, breakdown={})
        assert point.throughput_tps == pytest.approx(500.0)
        assert point.per_user_tps == pytest.approx(50.0)
        row = point.as_row()
        assert row["latency_ms"] == pytest.approx(20.0)


class TestDenseGpu:
    def test_oom_detection(self):
        system = DenseGpuSystem(1)
        assert system.evaluate(LLAMA3_8B, 1_048_576, 1) is None
        assert system.evaluate(LLAMA3_8B, 8192, 1) is not None

    def test_latency_monotone_in_context(self):
        system = DenseGpuSystem(1)
        lats = [system.evaluate(LLAMA3_8B, c, 1).token_latency_s
                for c in (8192, 32768, 131072)]
        assert lats == sorted(lats)

    def test_latency_monotone_in_users(self):
        system = DenseGpuSystem(1)
        lats = [system.evaluate(LLAMA3_8B, 8192, u).token_latency_s
                for u in (1, 4, 16)]
        assert lats == sorted(lats)

    def test_throughput_improves_with_batching(self):
        """Weight amortization: 16 users must beat 16x a single user's
        latency budget."""
        system = DenseGpuSystem(1)
        one = system.evaluate(LLAMA3_8B, 8192, 1)
        sixteen = system.evaluate(LLAMA3_8B, 8192, 16)
        assert sixteen.throughput_tps > 4 * one.throughput_tps

    def test_two_gpus_double_capacity_and_throughput(self):
        one = DenseGpuSystem(1)
        two = DenseGpuSystem(2)
        assert two.max_users(LLAMA3_8B, 32768) == \
            2 * one.max_users(LLAMA3_8B, 32768)
        u = one.max_users(LLAMA3_8B, 32768)
        t1 = one.evaluate(LLAMA3_8B, 32768, u)
        t2 = two.evaluate(LLAMA3_8B, 32768, 2 * u)
        assert t2.throughput_tps == pytest.approx(2 * t1.throughput_tps,
                                                  rel=1e-6)

    def test_breakdown_sums_to_total(self):
        point = DenseGpuSystem(1).evaluate(LLAMA3_8B, 32768, 4)
        assert sum(point.breakdown.values()) == pytest.approx(
            point.token_latency_s)

    def test_needs_at_least_one_gpu(self):
        with pytest.raises(ValueError):
            DenseGpuSystem(0)


class TestAttAcc:
    def test_faster_than_gpu_at_same_point(self):
        gpu = DenseGpuSystem(1)
        attacc = AttAccSystem()
        a = gpu.evaluate(LLAMA3_8B, 131072, 3)
        b = attacc.evaluate(LLAMA3_8B, 131072, 3)
        assert b.token_latency_s < a.token_latency_s

    def test_same_capacity_as_gpu(self):
        assert AttAccSystem().max_users(LLAMA3_8B, 32768) == \
            DenseGpuSystem(1).max_users(LLAMA3_8B, 32768)

    def test_gemms_unchanged(self):
        gpu = DenseGpuSystem(1).evaluate(LLAMA3_8B, 32768, 4)
        attacc = AttAccSystem().evaluate(LLAMA3_8B, 32768, 4)
        assert attacc.breakdown["gemm_s"] == pytest.approx(
            gpu.breakdown["gemm_s"])
        assert attacc.breakdown["attention_s"] < gpu.breakdown["attention_s"]


class TestSlidingWindow:
    def test_latency_flat_beyond_window(self):
        system = SlidingWindowGpuSystem(window=1024)
        a = system.evaluate(LLAMA3_8B, 32768, 4)
        b = system.evaluate(LLAMA3_8B, 1_048_576, 4)
        assert a.token_latency_s == pytest.approx(b.token_latency_s)

    def test_capacity_unbounded_by_context(self):
        system = SlidingWindowGpuSystem(window=1024)
        assert system.max_users(LLAMA3_8B, 1_048_576) == \
            system.max_users(LLAMA3_8B, 32768)

    def test_short_context_is_dense(self):
        system = SlidingWindowGpuSystem(window=4096, n_sink=0)
        dense = DenseGpuSystem(1).evaluate(LLAMA3_8B, 2048, 2)
        windowed = system.evaluate(LLAMA3_8B, 2048, 2)
        assert windowed.token_latency_s == pytest.approx(
            dense.token_latency_s)
