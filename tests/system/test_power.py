"""Power/area model: Section 9.4's published numbers."""

import pytest

from repro.system.power import PowerAreaModel


@pytest.fixture
def model():
    return PowerAreaModel()


def test_paper_total(model):
    assert model.drex_peak_w == pytest.approx(158.2, abs=0.1)


def test_components(model):
    assert model.package_peak_w == 18.7
    assert model.nma_peak_w == 1.072
    assert model.nma_area_mm2 == 15.1
    assert model.pfu_area_overhead == 0.067
    assert model.total_nma_area_mm2 == pytest.approx(120.8)


def test_system_power(model):
    assert model.system_peak_w(1, with_drex=False) == 700.0
    assert model.system_peak_w(2, with_drex=True) == pytest.approx(
        1400.0 + model.drex_peak_w)


def test_offload_energy(model):
    full = model.offload_energy_j(1e-3, active_packages=8)
    half = model.offload_energy_j(1e-3, active_packages=4)
    assert full == pytest.approx(2 * half)
    assert model.offload_energy_j(0.0) == 0.0


def test_summary_keys(model):
    assert "drex_peak_w" in model.summary()
