"""LongSight serving-engine model tests (Figures 7, 8, 9 machinery)."""

import numpy as np
import pytest

from repro.core.config import LongSightConfig
from repro.llm.config import LLAMA3_1B, LLAMA3_8B
from repro.system.baselines import DenseGpuSystem
from repro.system.engine import LongSightSystem


@pytest.fixture
def engine():
    return LongSightSystem(LongSightConfig(window=1024, n_sink=16,
                                           top_k=1024, use_itq=True))


class TestCapacity:
    def test_supports_1m_context_both_models(self, engine):
        assert engine.max_users(LLAMA3_1B, 1_048_576) >= 8
        assert engine.max_users(LLAMA3_8B, 1_048_576) >= 2

    def test_more_users_than_single_gpu(self, engine):
        gpu = DenseGpuSystem(1)
        for context in (32768, 131072):
            assert engine.max_users(LLAMA3_8B, context) > \
                gpu.max_users(LLAMA3_8B, context)

    def test_queue_depth_cap(self, engine):
        assert engine.max_users(LLAMA3_1B, 2048) <= 512

    def test_drex_bytes_grow_with_context(self, engine):
        a = engine.drex_bytes_per_user(LLAMA3_8B, 32768)
        b = engine.drex_bytes_per_user(LLAMA3_8B, 131072)
        assert 0 < a < b

    def test_short_context_no_offload(self, engine):
        assert engine.sparse_tokens(512) == 0
        assert engine.drex_bytes_per_user(LLAMA3_8B, 512) == 0

    def test_over_capacity_returns_none(self, engine):
        limit = engine.max_users(LLAMA3_8B, 1_048_576)
        assert engine.evaluate(LLAMA3_8B, 1_048_576, limit + 1) is None


class TestEndToEnd:
    def test_beats_gpu_at_long_context(self, engine):
        """The paper's headline shape: LongSight wins above ~128K."""
        gpu = DenseGpuSystem(1)
        from repro.bench.fig7 import best_point

        for config in (LLAMA3_1B,):
            g = best_point(gpu, config, 262144)
            ls = best_point(engine, config, 262144)
            assert ls.throughput_tps > 2 * g.throughput_tps

    def test_loses_or_ties_at_short_context(self, engine):
        """At 8K, dense GPUs are competitive (Section 9.1)."""
        from repro.bench.fig7 import best_point

        gpu2 = DenseGpuSystem(2)
        g = best_point(gpu2, LLAMA3_8B, 8192)
        ls = best_point(engine, LLAMA3_8B, 8192)
        assert g.throughput_tps > ls.throughput_tps

    def test_latency_grows_with_users(self, engine):
        lats = [engine.evaluate(LLAMA3_8B, 131072, u).token_latency_s
                for u in (1, 8, 31)]
        assert lats == sorted(lats)

    def test_headline_speedups_in_paper_ballpark(self):
        """Paper: 8.1-9.6x throughput, 3.6-11.9x per-user latency at max
        1-GPU context.  Accept a generous band around those."""
        from repro.bench.fig7 import headline_speedups

        for config in (LLAMA3_1B, LLAMA3_8B):
            h = headline_speedups(config)
            assert 4.0 <= h["throughput_ratio"] <= 20.0
            assert 2.0 <= h["per_user_latency_ratio"] <= 20.0


class TestBottleneck:
    def test_single_user_gpu_bound(self, engine):
        assert engine.bottleneck(LLAMA3_8B, 32768, 1) == "GPU"

    def test_saturated_short_context_device_bound(self, engine):
        users = engine.max_users(LLAMA3_1B, 8192)
        assert engine.bottleneck(LLAMA3_1B, 8192, users) in ("DReX", "CXL")


class TestBreakdowns:
    def test_single_offload_components_positive(self, engine):
        parts = engine.single_offload_breakdown(LLAMA3_8B, 131072)
        assert all(v >= 0 for v in parts.values())
        assert parts["score"] > 0
        assert parts["value_read"] > 0

    def test_no_offload_below_window(self, engine):
        parts = engine.single_offload_breakdown(LLAMA3_8B, 512)
        assert all(v == 0 for v in parts.values())

    def test_score_grows_with_context(self, engine):
        a = engine.single_offload_breakdown(LLAMA3_8B, 32768)
        b = engine.single_offload_breakdown(LLAMA3_8B, 1_048_576)
        assert b["score"] > a["score"]

    def test_value_read_fixed_per_user(self, engine):
        """Value loading is a per-user constant once k saturates (the
        paper's short-context bottleneck narrative)."""
        a = engine.single_offload_breakdown(LLAMA3_8B, 131072)
        b = engine.single_offload_breakdown(LLAMA3_8B, 1_048_576)
        assert a["value_read"] == pytest.approx(b["value_read"], rel=0.01)

    def test_saturated_overlaps_value_read(self, engine):
        single = engine.single_offload_breakdown(LLAMA3_8B, 1_048_576)
        saturated = engine.saturated_offload_breakdown(LLAMA3_8B, 1_048_576)
        assert saturated["value_read"] <= single["value_read"]

    def test_effective_top_k_clamped_by_survivors(self, engine):
        # Just above the window: few sparse tokens -> k_eff < top_k.
        small = engine.effective_top_k(1024 + 16 + 2000)
        assert small < engine.ls.top_k
        big = engine.effective_top_k(1_048_576)
        assert big == engine.ls.top_k


class TestEvaluateBreakdown:
    def test_components_nonnegative(self, engine):
        point = engine.evaluate(LLAMA3_8B, 131072, 4)
        assert all(v >= 0 for v in point.breakdown.values())

    def test_dense_only_when_context_fits_window(self, engine):
        point = engine.evaluate(LLAMA3_8B, 512, 4)
        assert point.breakdown["drex_s"] == 0
        assert point.breakdown["merge_s"] == 0
