"""Multi-tenant serving simulator tests."""

import numpy as np
import pytest

from repro.core.config import LongSightConfig
from repro.llm.config import LLAMA3_8B, LLAMA3_1B
from repro.system.baselines import DenseGpuSystem
from repro.system.engine import LongSightSystem
from repro.system.serving_sim import (
    ServingSimulator,
    Session,
    poisson_workload,
)


def _sessions(n, prompt=32768, output=32, spacing=0.0):
    return [Session(session_id=i, arrival_s=i * spacing,
                    prompt_tokens=prompt, output_tokens=output)
            for i in range(n)]


class TestWorkload:
    def test_poisson_deterministic_and_sorted(self):
        a = poisson_workload(20, 1.0, 1000, 10, seed=3)
        b = poisson_workload(20, 1.0, 1000, 10, seed=3)
        assert [s.arrival_s for s in a] == [s.arrival_s for s in b]
        arrivals = [s.arrival_s for s in a]
        assert arrivals == sorted(arrivals)

    def test_prompt_jitter_bounded(self):
        sessions = poisson_workload(50, 1.0, 1000, 10, seed=0,
                                    prompt_jitter=0.25)
        prompts = [s.prompt_tokens for s in sessions]
        assert min(prompts) >= 750 and max(prompts) <= 1250
        assert len(set(prompts)) > 1


class TestHeterogeneousCosts:
    def test_dense_step_matches_uniform_evaluate(self):
        system = DenseGpuSystem(1)
        uniform = system.evaluate(LLAMA3_8B, 32768, 4)
        step = system.step_latency_s(LLAMA3_8B, [32768] * 4)
        assert step == pytest.approx(uniform.token_latency_s, rel=1e-9)

    def test_longsight_step_matches_uniform_evaluate(self):
        engine = LongSightSystem(LongSightConfig(window=1024, n_sink=16,
                                                 top_k=1024, use_itq=True))
        uniform = engine.evaluate(LLAMA3_8B, 131072, 4)
        step = engine.step_latency_s(LLAMA3_8B, [131072] * 4)
        assert step == pytest.approx(uniform.token_latency_s, rel=0.02)

    def test_mixed_contexts_between_extremes(self):
        system = DenseGpuSystem(1)
        low = system.step_latency_s(LLAMA3_8B, [8192] * 4)
        mixed = system.step_latency_s(LLAMA3_8B, [8192, 8192, 65536, 65536])
        high = system.step_latency_s(LLAMA3_8B, [65536] * 4)
        assert low < mixed < high

    def test_admits_respects_capacity(self):
        system = DenseGpuSystem(1)
        assert system.admits(LLAMA3_8B, [32768] * 4)
        assert not system.admits(LLAMA3_8B, [524288] * 4)
        engine = LongSightSystem(LongSightConfig(window=1024, n_sink=16,
                                                 top_k=1024))
        assert engine.admits(LLAMA3_8B, [524288] * 4)


class TestSimulation:
    def test_all_sessions_complete(self):
        system = DenseGpuSystem(1)
        sim = ServingSimulator(system, LLAMA3_8B)
        report = sim.run(_sessions(3, prompt=16384, output=8))
        assert len(report.completed) == 3
        assert report.tokens_generated == 24
        assert report.throughput_tps > 0

    def test_admission_queues_when_full(self):
        """More long sessions than HBM fits: later ones wait."""
        system = DenseGpuSystem(1)
        sim = ServingSimulator(system, LLAMA3_8B)
        sessions = _sessions(8, prompt=131072, output=4)
        report = sim.run(sessions)
        assert len(report.completed) == 8
        delays = [s.queueing_delay_s for s in sessions]
        assert max(delays) > 0.0
        assert report.peak_concurrency < 8

    def test_impossible_sessions_rejected(self):
        system = DenseGpuSystem(1)
        sim = ServingSimulator(system, LLAMA3_8B)
        report = sim.run(_sessions(2, prompt=1_048_576, output=4))
        assert not report.completed
        assert report.tokens_generated == 0

    def test_longsight_sustains_more_concurrency(self):
        """The Section 9.1 capacity story under dynamics: at 128K prompts,
        LongSight admits far more concurrent sessions than one GPU."""
        config = LLAMA3_8B
        sessions_a = _sessions(12, prompt=131072, output=4)
        sessions_b = _sessions(12, prompt=131072, output=4)
        gpu_report = ServingSimulator(DenseGpuSystem(1), config).run(sessions_a)
        engine = LongSightSystem(LongSightConfig(window=1024, n_sink=16,
                                                 top_k=1024, use_itq=True))
        ls_report = ServingSimulator(engine, config).run(sessions_b)
        assert ls_report.peak_concurrency > gpu_report.peak_concurrency
        assert ls_report.mean_queueing_delay_s() < \
            gpu_report.mean_queueing_delay_s()

    def test_context_grows_during_decode(self):
        engine = LongSightSystem(LongSightConfig(window=1024, n_sink=16,
                                                 top_k=1024))
        sim = ServingSimulator(engine, LLAMA3_1B)
        session = Session(session_id=0, arrival_s=0.0, prompt_tokens=4096,
                          output_tokens=5)
        sim.run([session])
        assert session.context == 4096 + 5
        assert session.finished_s is not None

    def test_report_metrics(self):
        system = DenseGpuSystem(1)
        report = ServingSimulator(system, LLAMA3_1B).run(
            _sessions(2, prompt=1024, output=4, spacing=0.001))
        assert report.mean_session_latency_s() > 0
        assert report.mean_queueing_delay_s() >= 0


class TestPrefillIntegration:
    def test_prefill_delays_first_token(self):
        from repro.system.prefill import PrefillModel

        system = DenseGpuSystem(1)
        sessions_fast = _sessions(1, prompt=131072, output=4)
        sessions_slow = _sessions(1, prompt=131072, output=4)
        no_prefill = ServingSimulator(system, LLAMA3_8B).run(sessions_fast)
        with_prefill = ServingSimulator(
            system, LLAMA3_8B, prefill=PrefillModel()).run(sessions_slow)
        assert len(with_prefill.completed) == 1
        assert with_prefill.mean_session_latency_s() > \
            no_prefill.mean_session_latency_s()
        assert sessions_slow[0].ready_s > sessions_slow[0].admitted_s

    def test_prefill_uses_longsight_object_writes(self):
        """The LongSight system hands its algorithm config to the prefill
        model so DReX object writes are accounted (and overlapped)."""
        from repro.system.prefill import PrefillModel

        engine = LongSightSystem(LongSightConfig(window=1024, n_sink=16,
                                                 top_k=1024))
        sessions = _sessions(1, prompt=131072, output=2)
        report = ServingSimulator(engine, LLAMA3_8B,
                                  prefill=PrefillModel()).run(sessions)
        assert len(report.completed) == 1
