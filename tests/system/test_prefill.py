"""Prefill cost model tests."""

import pytest

from repro.core.config import LongSightConfig
from repro.llm.config import LLAMA3_8B
from repro.system.prefill import PrefillModel

LS = LongSightConfig(window=1024, n_sink=16, top_k=1024)


@pytest.fixture
def model():
    return PrefillModel()


def test_gemm_linear_in_prompt(model):
    a = model.gpu_gemm_s(LLAMA3_8B, 10_000)
    b = model.gpu_gemm_s(LLAMA3_8B, 20_000)
    assert b == pytest.approx(2 * a, rel=0.01)


def test_attention_quadratic_in_prompt(model):
    a = model.gpu_attention_s(LLAMA3_8B, 65536)
    b = model.gpu_attention_s(LLAMA3_8B, 131072)
    assert b == pytest.approx(4 * a, rel=0.05)


def test_object_bytes_match_layout(model):
    prompt = LS.window + LS.n_sink + 128
    n_bytes = model.drex_object_bytes(LLAMA3_8B, prompt, LS)
    per_head_layer = 128 * 128 // 8 + 2 * 128 * 128 * 2
    assert n_bytes == per_head_layer * 8 * 32


def test_short_prompt_writes_nothing(model):
    assert model.drex_object_bytes(LLAMA3_8B, 512, LS) == 0


def test_writes_overlap_compute(model):
    """For realistic prompts the CXL write hides under GPU compute."""
    breakdown = model.prefill(LLAMA3_8B, 131072, LS)
    assert breakdown.drex_write_s > 0
    assert breakdown.exposed_write_s == 0.0
    assert breakdown.total_s == pytest.approx(breakdown.gpu_s)


def test_dense_baseline_has_no_writes(model):
    breakdown = model.prefill(LLAMA3_8B, 131072, ls=None)
    assert breakdown.drex_write_s == 0.0
    assert breakdown.total_s == breakdown.gpu_s


def test_prefill_throughput_far_exceeds_decode():
    """Sanity vs Section 8.1.2: prefill has much higher token throughput
    than decode."""
    from repro.system.baselines import DenseGpuSystem

    model = PrefillModel()
    prompt = 32768
    prefill_tps = prompt / model.prefill(LLAMA3_8B, prompt).total_s
    decode = DenseGpuSystem(1).evaluate(LLAMA3_8B, prompt, 1)
    assert prefill_tps > 50 * decode.per_user_tps
