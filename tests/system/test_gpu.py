"""GPU roofline model tests."""

import numpy as np
import pytest

from repro.llm.config import LLAMA3_1B, LLAMA3_8B
from repro.system.gpu import GpuModel
from repro.system.specs import H100, GpuSpec


@pytest.fixture
def gpu():
    return GpuModel()


class TestRoofline:
    def test_weight_gemm_memory_bound_at_small_batch(self, gpu):
        """At batch 1 the GEMM time equals weight-streaming time."""
        t = gpu.weight_gemm_ns(LLAMA3_8B, 1)
        expected = gpu.layer_weight_bytes(LLAMA3_8B) / H100.hbm_bandwidth * 1e9
        assert t == pytest.approx(expected)

    def test_weight_gemm_compute_bound_at_huge_batch(self, gpu):
        t = gpu.weight_gemm_ns(LLAMA3_8B, 100_000)
        flops = 2 * gpu.layer_weight_bytes(LLAMA3_8B) / 2 * 100_000
        assert t == pytest.approx(flops / H100.flops * 1e9)

    def test_gemm_amortization(self, gpu):
        """Doubling users must far less than double GEMM time in the
        memory-bound regime — the batching benefit of Section 2.1."""
        t1 = gpu.weight_gemm_ns(LLAMA3_8B, 1)
        t16 = gpu.weight_gemm_ns(LLAMA3_8B, 16)
        assert t16 == pytest.approx(t1)

    def test_attention_no_amortization(self, gpu):
        """Attention traffic scales linearly with users (no KV reuse)."""
        t1 = gpu.dense_attention_ns(LLAMA3_8B, 1, 32768)
        t16 = gpu.dense_attention_ns(LLAMA3_8B, 16, 32768)
        assert t16 == pytest.approx(16 * t1)

    def test_attention_linear_in_context(self, gpu):
        a = gpu.dense_attention_ns(LLAMA3_8B, 1, 10_000)
        b = gpu.dense_attention_ns(LLAMA3_8B, 1, 20_000)
        assert b == pytest.approx(2 * a)

    def test_bandwidth_override(self, gpu):
        base = gpu.dense_attention_ns(LLAMA3_8B, 1, 32768)
        pim = gpu.dense_attention_ns(LLAMA3_8B, 1, 32768,
                                     bandwidth_override=4 * H100.hbm_bandwidth)
        assert pim == pytest.approx(base / 4)

    def test_itq_is_small(self, gpu):
        """Section 5.4: ITQ under 3% of the QKV projection cost."""
        itq = gpu.itq_ns(LLAMA3_8B, 64)
        qkv = gpu.weight_gemm_ns(LLAMA3_8B, 64)
        assert itq < 0.03 * qkv


class TestCapacity:
    def test_weight_bytes_match_model_size(self, gpu):
        assert gpu.weight_bytes(LLAMA3_8B) == pytest.approx(
            LLAMA3_8B.n_params() * 2, rel=0.05)

    def test_fits_boundary(self, gpu):
        assert gpu.fits(LLAMA3_8B, 8192, 1)
        assert not gpu.fits(LLAMA3_8B, 1_048_576, 1)  # 128 GB of KV

    def test_max_users_consistent_with_fits(self, gpu):
        for context in (8192, 131072):
            users = gpu.max_users(LLAMA3_8B, context)
            assert gpu.fits(LLAMA3_8B, context, users)
            assert not gpu.fits(LLAMA3_8B, context, users + 1)

    def test_max_users_zero_when_weights_dont_fit(self):
        tiny_gpu = GpuModel(GpuSpec(name="tiny", tflops=1,
                                    hbm_bytes=8 * 1024**3,
                                    hbm_bandwidth=1e12))
        assert tiny_gpu.max_users(LLAMA3_8B, 1024) == 0

    def test_1b_supports_longer_contexts(self, gpu):
        assert gpu.max_users(LLAMA3_1B, 1_048_576) >= 2
