"""CXL link model tests."""

import pytest

from repro.system.cxl import CxlLink


def test_transfer_includes_latency_and_serialization():
    link = CxlLink(bandwidth=100e9, latency_ns=600.0)
    assert link.transfer_ns(0) == pytest.approx(600.0)
    assert link.transfer_ns(100e9) == pytest.approx(600.0 + 1e9)


def test_serialization_excludes_latency():
    link = CxlLink(bandwidth=50e9)
    assert link.serialization_ns(50e9) == pytest.approx(1e9)


def test_polling_overhead():
    link = CxlLink(latency_ns=500.0, polling_interval_ns=1000.0)
    assert link.polling_overhead_ns == pytest.approx(1000.0)


def test_transfer_monotone_in_bytes():
    link = CxlLink()
    assert link.transfer_ns(2000) > link.transfer_ns(1000)
