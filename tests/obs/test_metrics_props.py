"""Property tests for the metrics registry (hypothesis).

Two contracts the observability layer documents:

- the bucket-only percentile estimate lands within one bucket of the
  exact nearest-rank percentile (``np.percentile`` with
  ``method="inverted_cdf"``) for any data and any ``q``;
- registry merges are associative and commutative, so per-worker
  registries can be folded in any order (exact for integer counters;
  gauges merge by max, histograms by bucket-count addition).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.obs import Histogram, MetricsRegistry
from repro.obs.metrics import DEFAULT_EDGES

# Spans both tails: below the first edge (1e-6) and above the last (1e2).
_values = st.lists(
    st.floats(min_value=1e-9, max_value=1e4,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=120)
_q = st.floats(min_value=0.0, max_value=100.0)


class TestPercentileEstimate:
    @given(values=_values, q=_q)
    @settings(max_examples=200, deadline=None)
    def test_estimate_within_one_bucket_of_exact(self, values, q):
        hist = Histogram("h", edges=DEFAULT_EDGES)
        for value in values:
            hist.observe(value)
        exact = float(np.percentile(np.asarray(values), q,
                                    method="inverted_cdf"))
        estimate = hist.estimate_percentile(q)
        assert abs(hist.bucket_index(estimate)
                   - hist.bucket_index(exact)) <= 1
        # the estimate never leaves the observed range
        assert min(values) <= estimate <= max(values)

    @given(values=_values, q=_q)
    @settings(max_examples=100, deadline=None)
    def test_tracked_histogram_percentile_is_exact(self, values, q):
        hist = Histogram("h", track_values=True)
        for value in values:
            hist.observe(value)
        assert hist.percentile(q) == float(
            np.percentile(np.asarray(values, dtype=np.float64), q))

    @given(values=_values, split=st.integers(min_value=0, max_value=120))
    @settings(max_examples=100, deadline=None)
    def test_merge_equals_observing_concatenation(self, values, split):
        split = min(split, len(values))
        left, right = Histogram("h"), Histogram("h")
        for value in values[:split]:
            left.observe(value)
        for value in values[split:]:
            right.observe(value)
        whole = Histogram("h")
        for value in values:
            whole.observe(value)
        left.merge(right)
        assert np.array_equal(left.counts, whole.counts)
        assert left.count == whole.count
        assert left.min == whole.min and left.max == whole.max


_names = st.sampled_from(["a", "b", "c"])
_incs = st.lists(st.tuples(_names, st.integers(min_value=0, max_value=10**6)),
                 max_size=30)


def _registry(increments) -> MetricsRegistry:
    registry = MetricsRegistry()
    for name, amount in increments:
        registry.counter(name).inc(amount)
    return registry


class TestCounterMerge:
    @given(x=_incs, y=_incs)
    @settings(max_examples=200, deadline=None)
    def test_commutative(self, x, y):
        xy = _registry(x)
        xy.merge(_registry(y))
        yx = _registry(y)
        yx.merge(_registry(x))
        assert xy.snapshot()["counters"] == yx.snapshot()["counters"]

    @given(x=_incs, y=_incs, z=_incs)
    @settings(max_examples=200, deadline=None)
    def test_associative(self, x, y, z):
        left = _registry(x)
        left.merge(_registry(y))
        left.merge(_registry(z))
        inner = _registry(y)
        inner.merge(_registry(z))
        right = _registry(x)
        right.merge(inner)
        assert left.snapshot()["counters"] == right.snapshot()["counters"]

    @given(x=_incs, y=_incs)
    @settings(max_examples=100, deadline=None)
    def test_merge_equals_total(self, x, y):
        merged = _registry(x)
        merged.merge(_registry(y))
        totals = {}
        for name, amount in list(x) + list(y):
            totals[name] = totals.get(name, 0) + amount
        assert merged.snapshot()["counters"] == totals
