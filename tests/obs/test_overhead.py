"""No-op instrumentation must be effectively free (the <5% gate).

Runs the real overhead benchmark — a 512-step decode microloop with and
without per-step instrumentation calls against a disabled registry —
and pins the headline number the observability layer's default-on policy
rests on.
"""

import json

from repro.bench.obs_overhead import run_obs_overhead, validate_payload
from repro.obs import (NULL_COUNTER, NULL_GAUGE, NULL_HISTOGRAM, NULL_OBS,
                       MetricsRegistry)


def test_noop_overhead_below_5_percent(tmp_path):
    run_obs_overhead(steps=512, reps=3, out_dir=tmp_path)
    payload = json.loads((tmp_path / "BENCH_obs.json").read_text())
    assert validate_payload(payload) == []
    frac = payload["results"]["noop_overhead_frac"]
    assert frac < 0.05, \
        f"no-op instrumentation added {frac:.1%} to the decode microloop"


def test_disabled_registry_hands_out_shared_nulls():
    """The no-op path allocates nothing: every request for an instrument
    returns the same shared singleton, and recording is a no-op."""
    registry = MetricsRegistry(enabled=False)
    assert registry.counter("a") is registry.counter("b") is NULL_COUNTER
    assert registry.gauge("a") is NULL_GAUGE
    assert registry.histogram("a") is NULL_HISTOGRAM
    assert registry.new_histogram("a") is NULL_HISTOGRAM
    registry.counter("a").inc(5)
    registry.gauge("a").set(3.0)
    registry.histogram("a").observe(1.0)
    assert NULL_COUNTER.value == 0
    assert NULL_GAUGE.value == 0.0
    assert NULL_HISTOGRAM.count == 0
    assert registry.snapshot() == {"counters": {}, "gauges": {},
                                   "histograms": {}}


def test_null_obs_is_fully_disabled():
    assert not NULL_OBS.metrics.enabled
    assert not NULL_OBS.tracer.enabled
    with NULL_OBS.tracer.span("x"):
        NULL_OBS.metrics.counter("x").inc()
    assert NULL_OBS.tracer.spans == []
