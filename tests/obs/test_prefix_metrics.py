"""Prefix-cache observability: hit/miss counters, shared-block gauge.

The pool reports through its ``Obs`` bundle: ``serve.prefix.hit`` /
``serve.prefix.miss`` counters on attach outcomes and the
``serve.prefix.shared_blocks`` gauge tracking resident shared blocks.
A ``NULL_OBS``-bound pool must keep full functional behaviour while
recording nothing (the null-instrument no-op contract).
"""

import numpy as np

from repro.obs import NULL_OBS, MetricsRegistry, Obs, Tracer
from repro.serve.paged_kv import PagedKVPool
from tests.conftest import TINY

BT = 4


def _prefill(cache, tokens):
    arr = np.asarray(tokens, dtype=np.int64)
    shape = (TINY.n_kv_heads, len(arr), TINY.head_dim)
    k = np.broadcast_to(
        arr.astype(np.float32)[None, :, None], shape).copy()
    for layer in range(TINY.n_layers):
        cache.append(layer, k, k.copy())
    cache.publish_prefix(arr)


def _share_unshare(pool):
    """Publish 2 blocks, attach them, miss once, free everything."""
    tokens = np.arange(2 * BT)
    a = pool.new_cache()
    _prefill(a, tokens)
    b = pool.new_cache()
    assert b.attach_prefix(tokens) == 2 * BT          # 2 hits, no miss
    c = pool.new_cache()
    assert c.attach_prefix(np.full(2 * BT, 9)) == 0   # 1 miss
    c.free()
    a.free()
    b.free()


class TestEnabledInstruments:
    def test_hit_miss_counters_and_gauge(self):
        obs = Obs(MetricsRegistry(enabled=True), Tracer(enabled=False))
        pool = PagedKVPool(TINY, n_blocks=16, block_tokens=BT,
                           prefix_caching=True, obs=obs)
        _share_unshare(pool)
        assert obs.metrics.counter("serve.prefix.hit").value == 2
        assert obs.metrics.counter("serve.prefix.miss").value == 1
        gauge = obs.metrics.gauge("serve.prefix.shared_blocks")
        assert gauge.value == 0            # everything retired at the end
        assert gauge.high_watermark == 2   # but 2 blocks were resident
        # the plain-int pool telemetry agrees with the instruments
        assert pool.prefix_hits == 2
        assert pool.prefix_misses == 1
        assert pool.shared_blocks_peak == 2

    def test_gauge_tracks_partial_release(self):
        obs = Obs(MetricsRegistry(enabled=True), Tracer(enabled=False))
        pool = PagedKVPool(TINY, n_blocks=16, block_tokens=BT,
                           prefix_caching=True, obs=obs)
        tokens = np.arange(2 * BT)
        a = pool.new_cache()
        _prefill(a, tokens)
        b = pool.new_cache()
        b.attach_prefix(tokens)
        a.free()  # borrower still references both blocks
        assert obs.metrics.gauge("serve.prefix.shared_blocks").value == 2
        b.free()
        assert obs.metrics.gauge("serve.prefix.shared_blocks").value == 0


class TestNullInstruments:
    def test_null_obs_records_nothing_but_behaves_identically(self):
        pool = PagedKVPool(TINY, n_blocks=16, block_tokens=BT,
                           prefix_caching=True, obs=NULL_OBS)
        _share_unshare(pool)
        # functional behaviour unchanged: sharing happened and unwound
        assert pool.prefix_hits == 2
        assert pool.prefix_misses == 1
        assert pool.n_free == pool.n_blocks
        # but the disabled registry stored no instruments at all
        assert list(NULL_OBS.metrics.counter_names()) == []
        snapshot = NULL_OBS.metrics.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["gauges"] == {}
