"""Golden-trace test: the serve engine's span tree is a stable contract.

A seeded three-request run under the analytic clock produces a
deterministic scheduling structure — how many engine steps, how many
prefill chunks, how decode batches interleave.  The test pins that
structure (names + nesting + sibling order, **no timestamps**) against a
checked-in golden JSON.  When an intentional scheduling or span-taxonomy
change shifts the shape, regenerate with:

    PYTHONPATH=src python -m pytest tests/obs/test_trace_golden.py \
        --update-golden
"""

import json
import pathlib

import numpy as np
import pytest

from repro.core.config import LongSightConfig
from repro.core.hybrid import LongSightAttention
from repro.llm.config import LLAMA3_8B
from repro.llm.model import Transformer
from repro.obs import MetricsRegistry, Obs, Tracer
from repro.serve.crossval import default_systems
from repro.serve.engine import AnalyticTiming, ServeEngine
from repro.serve.paged_kv import PagedKVPool
from repro.serve.scheduler import ServeRequest
from repro.system.prefill import PrefillModel
from tests.conftest import TINY

GOLDEN = pathlib.Path(__file__).parent / "golden" / "serve_trace.json"
LS = LongSightConfig(window=8, n_sink=4, top_k=12, thresholds=3)


def _traced_run() -> Tracer:
    """The pinned scenario: three staggered prompts, analytic clock.

    Every input is seeded and the clock is analytic, so the engine's
    step/chunk/batch structure — hence the span tree — is deterministic.
    """
    model = Transformer(TINY, seed=0)
    rng = np.random.default_rng(42)
    prompts = [rng.integers(0, TINY.vocab_size, size=n)
               for n in (20, 33, 48)]
    obs = Obs(MetricsRegistry(enabled=True), Tracer(enabled=True))
    pool = PagedKVPool(TINY, n_blocks=64, block_tokens=16)
    engine = ServeEngine(
        model, pool, lambda r: LongSightAttention(LS),
        timing=AnalyticTiming(default_systems()["longsight"], LLAMA3_8B,
                              prefill=PrefillModel()),
        obs=obs)
    requests = [ServeRequest(request_id=i, prompt=p, max_new_tokens=6,
                             charged_prompt_tokens=32_768)
                for i, p in enumerate(prompts)]
    engine.run(requests)
    for request in requests:
        assert len(request.outputs) == 6   # the scenario actually served
    return obs.tracer


def test_span_tree_matches_golden(update_golden):
    tree = _traced_run().span_tree()
    if update_golden:
        GOLDEN.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN.write_text(json.dumps(tree, indent=2) + "\n")
        pytest.skip(f"golden rewritten: {GOLDEN}")
    assert GOLDEN.exists(), \
        "golden missing — run with --update-golden to create it"
    assert tree == json.loads(GOLDEN.read_text())


def test_span_structure_invariants():
    """Shape facts that must hold regardless of the golden's content."""
    tracer = _traced_run()
    spans = tracer.spans
    assert spans, "instrumented run recorded no spans"
    roots = [s for s in spans if s.parent < 0]
    assert [r.name for r in roots] == ["serve.run"]
    for span in spans:
        assert span.end_s >= span.start_s
        if span.parent >= 0:
            parent = spans[span.parent]
            assert span.parent < span.index    # parents precede children
            assert parent.start_s <= span.start_s
            assert span.end_s <= parent.end_s + 1e-9
    names = {s.name for s in spans}
    assert {"serve.run", "engine.step", "decode_batch",
            "prefill_chunk"} <= names
    # every engine.step nests directly under serve.run
    for span in spans:
        if span.name == "engine.step":
            assert spans[span.parent].name == "serve.run"


def test_chrome_trace_export_is_valid(tmp_path):
    tracer = _traced_run()
    path = tracer.write_chrome_trace(tmp_path / "trace.json")
    trace = json.loads(path.read_text())
    events = trace["traceEvents"]
    assert len(events) == len(tracer.spans)
    for event in events:
        assert event["ph"] == "X"
        assert event["ts"] >= 0.0 and event["dur"] >= 0.0
        assert isinstance(event["name"], str) and event["name"]
        assert event["pid"] == 1 and event["tid"] == 1
    # origin normalisation: the earliest event starts at ts == 0
    assert min(e["ts"] for e in events) == 0.0


def test_jsonl_export_round_trips(tmp_path):
    tracer = _traced_run()
    path = tracer.write_jsonl(tmp_path / "spans.jsonl")
    lines = path.read_text().splitlines()
    assert len(lines) == len(tracer.spans)
    for line, span in zip(lines, tracer.spans):
        record = json.loads(line)
        assert record["name"] == span.name
        assert record["parent"] == span.parent
        assert record["end_s"] >= record["start_s"]


def test_disabled_tracer_records_nothing():
    tracer = Tracer(enabled=False)
    with tracer.span("anything", note=1):
        with tracer.span("nested"):
            pass
    assert tracer.spans == []
    assert tracer.to_chrome_trace() == {"traceEvents": [],
                                        "displayTimeUnit": "ms"}
    assert tracer.root_coverage(1.0) == 0.0
