#!/usr/bin/env python
"""A guided tour of the DReX device model: objects, offload, latency.

Walks the Section 6/7 execution model explicitly:

1. register a user with the DCC (CAM + response buffer + polling bit),
2. write Key/Value/Key-Sign Objects (allocator places Key Block groups),
3. submit a Request Descriptor into the MMIO queue,
4. execute: PFU filtering -> NMA scoring -> top-k -> response buffer,
5. poll, read the Response Descriptor, inspect the latency breakdown.

Run:
    python examples/drex_offload_tour.py --keys 50000
"""

import argparse

import numpy as np

from repro.drex import DrexDevice, RequestDescriptor
from repro.llm.config import LLAMA_SIM_BASE


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--keys", type=int, default=20000,
                        help="context keys per KV head")
    parser.add_argument("--top-k", type=int, default=128)
    parser.add_argument("--threshold", type=float, default=None)
    args = parser.parse_args()

    config = LLAMA_SIM_BASE
    threshold = args.threshold if args.threshold is not None \
        else config.head_dim // 2 + 2
    rng = np.random.default_rng(0)

    device = DrexDevice(config.n_layers, config.n_kv_heads,
                        config.n_q_heads, config.head_dim,
                        thresholds=threshold)
    print(f"DReX: {device.geometry.n_packages} packages, "
          f"{device.geometry.n_pfus} PFUs, {device.geometry.n_nmas} NMAs, "
          f"{device.geometry.capacity_bytes / 2**30:.0f} GiB")

    buffer_index = device.register_user(uid=0)
    print(f"1. registered user 0 -> response buffer {buffer_index}")

    print(f"2. writing {args.keys} keys/values per KV head "
          f"(layer 0, {config.n_kv_heads} heads)...")
    for head in range(config.n_kv_heads):
        keys = rng.normal(size=(args.keys, config.head_dim))
        device.write_kv(0, 0, head, keys, keys * 0.5)
    chain = device.allocator.partitions[0].slices[(0, 0)]
    print(f"   head 0 slice chain: {len(chain)} slice(s) in package(s) "
          f"{[s.package for s in chain]}, "
          f"{sum(len(s.groups) for s in chain)} Key Block groups, "
          f"{chain[0].banks_spanned(device.geometry)} banks spanned")
    print(f"   device utilization: {device.allocator.utilization():.4%}")

    queries = rng.normal(size=(config.n_q_heads, config.head_dim))
    request = RequestDescriptor(uid=0, layer=0, queries=queries,
                                top_k=args.top_k)
    print(f"3. submitting Request Descriptor ({request.n_bytes} bytes, "
          f"{config.n_q_heads} query heads, k={args.top_k})")
    response = device.execute(request)

    head0 = response.heads[0]
    survivors = device.thresholds[0, 0]
    print(f"4. offload complete: head 0 retrieved {len(head0.indices)} "
          f"keys (threshold {survivors:.0f}/{config.head_dim} sign bits)")
    print(f"   top-3 scores: {np.round(head0.scores[:3], 3)}")
    print(f"   response size: {response.n_bytes / 1024:.1f} KiB over CXL")

    print("5. latency breakdown (us):")
    for name, value in response.latency.components().items():
        print(f"   {name:<12} {value / 1e3:8.2f}")
    print(f"   {'total':<12} {response.latency.total_ns / 1e3:8.2f}")


if __name__ == "__main__":
    main()
