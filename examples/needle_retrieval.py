#!/usr/bin/env python
"""Long-range quality probe: what sliding windows lose, LongSight keeps.

The workload the paper's introduction motivates: a context whose distant
tokens carry value.  On a synthetic long-form corpus with long-range copy
structure, we compare full-document perplexity under three attentions:

- dense (the quality ceiling, and the cost ceiling),
- sliding window only (cheap, but blind beyond the window),
- LongSight hybrid (window + SCF-filtered top-k over the distant region).

The headline readout is the *recovered gap*: how much of the quality that
window-only attention loses relative to dense does LongSight win back,
and at what fraction of the dense KV accesses.

Run:
    python examples/needle_retrieval.py --context 3072
"""

import argparse

import numpy as np

from repro.bench import algo
from repro.core import (
    FilterStats,
    LongSightAttention,
    LongSightConfig,
    fit_itq,
)
from repro.core.hybrid import SlidingWindowAttention
from repro.data.synthetic import pg_like
from repro.llm.perplexity import perplexity
from repro.llm.zoo import trained_model


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="llama-sim-small")
    parser.add_argument("--steps", type=int, default=None,
                        help="override training steps (default: full recipe)")
    parser.add_argument("--context", type=int, default=4096)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--window", type=int, default=algo.WINDOW)
    parser.add_argument("--top-k", type=int, default=algo.TOP_K_LARGE)
    args = parser.parse_args()

    model = trained_model(args.model, steps=args.steps)
    tokens = pg_like(args.context, seed=args.seed)
    rotations = fit_itq(model, pg_like(1024, seed=11))
    threshold = model.config.head_dim // 2 + 2

    print(f"Corpus: {args.context} tokens of long-form synthetic text "
          f"(long-range copy structure); window = {args.window} tokens.\n")
    dense = perplexity(model, tokens)
    window_only = perplexity(
        model, tokens,
        backend=SlidingWindowAttention(window=args.window,
                                       n_sink=algo.N_SINK))
    config = LongSightConfig(window=args.window, n_sink=algo.N_SINK,
                             top_k=args.top_k, thresholds=threshold,
                             use_itq=True)
    stats = FilterStats(model.config.n_layers, model.config.n_kv_heads)
    hybrid = perplexity(model, tokens,
                        backend=LongSightAttention(config,
                                                   rotations=rotations,
                                                   stats=stats))

    print(f"  dense attention     : ppl {dense:7.3f}   (accesses all "
          f"{args.context} KVs per query)")
    print(f"  sliding window only : ppl {window_only:7.3f}   "
          f"(+{(window_only / dense - 1) * 100:.2f}% vs dense)")
    print(f"  LongSight hybrid    : ppl {hybrid:7.3f}   "
          f"(+{(hybrid / dense - 1) * 100:.2f}% vs dense)")
    print()
    lost = window_only - dense
    recovered = window_only - hybrid
    if lost > 1e-9:
        print(f"  window-only loses {lost:.3f} ppl to blindness beyond "
              f"{args.window} tokens;")
        print(f"  LongSight recovers {recovered / lost * 100:.0f}% of that "
              f"gap while touching only "
              f"1/{stats.filter_ratio:.1f} of the distant KV accesses "
              f"(sparsity {stats.sparsity * 100:.1f}%).")
    else:
        print("  (this corpus/model shows no window penalty; "
              "try a longer --context)")


if __name__ == "__main__":
    main()
