#!/usr/bin/env python
"""Threshold auto-tuning walkthrough (Section 8.1.3).

Starts from thresholds that filter nothing and greedily raises the
threshold of the (layer, KV head) with the lowest filter ratio until the
perplexity budget is spent, printing the quality/filter-ratio trajectory.

Run:
    python examples/tune_thresholds.py --budget 0.05 --context 2048
"""

import argparse

import numpy as np

from repro.bench import algo
from repro.core import LongSightConfig, fit_itq
from repro.core.tuning import tune_thresholds
from repro.data.synthetic import pg_like
from repro.llm.perplexity import perplexity
from repro.llm.zoo import trained_model


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="llama-sim-small")
    parser.add_argument("--steps", type=int, default=None,
                        help="override training steps (default: full recipe)")
    parser.add_argument("--context", type=int, default=2048)
    parser.add_argument("--budget", type=float, default=0.05,
                        help="max relative perplexity increase")
    parser.add_argument("--iterations", type=int, default=12)
    parser.add_argument("--no-itq", action="store_true")
    args = parser.parse_args()

    model = trained_model(args.model, steps=args.steps)
    tokens = pg_like(args.context, seed=3)
    dense_ppl = perplexity(model, tokens)
    print(f"dense perplexity: {dense_ppl:.3f} "
          f"(budget: +{args.budget:.0%} -> {dense_ppl * (1 + args.budget):.3f})")

    rotations = None
    config = LongSightConfig(window=algo.WINDOW, n_sink=algo.N_SINK,
                             top_k=algo.TOP_K_LARGE, use_itq=not args.no_itq)
    if config.use_itq:
        print("fitting ITQ rotations...")
        rotations = fit_itq(model, pg_like(1024, seed=11))

    print(f"tuning thresholds (step = head_dim/8 = "
          f"{max(1, model.config.head_dim // 8)} bits)...\n")
    result = tune_thresholds(model, tokens, config, dense_ppl,
                             max_increase=args.budget,
                             max_iterations=args.iterations,
                             rotations=rotations)
    print(f"{'iter':>4} {'perplexity':>10} {'increase':>9} {'filter ratio':>12}")
    for i, (ppl, ratio) in enumerate(result.history, start=1):
        marker = " <- accepted" if ppl / dense_ppl - 1 <= args.budget else \
            " <- over budget (reverted)"
        print(f"{i:>4} {ppl:>10.3f} {(ppl / dense_ppl - 1) * 100:>8.2f}% "
              f"{ratio:>11.2f}x{marker}")
    print(f"\nfinal thresholds (layers x KV heads):\n{result.thresholds}")
    print(f"final: perplexity {result.perplexity:.3f}, "
          f"filter ratio {result.filter_ratio:.2f}x, "
          f"sparsity {(1 - 1 / result.filter_ratio) * 100:.1f}%")


if __name__ == "__main__":
    main()
