#!/usr/bin/env python
"""Serving-capacity planner: who serves your workload, and how fast?

Uses the analytical performance model (paper-scale Llama-3 dimensions,
Table 2 hardware) to compare 1-GPU, 2-GPU, AttAcc and LongSight for a
given model, context length and latency SLO — the Figure 7 machinery as a
planning tool.

Run:
    python examples/serving_capacity.py --model llama-3-8b --context 262144
    python examples/serving_capacity.py --context 1048576 --slo-ms 50
"""

import argparse

from repro.bench.fig7 import best_point
from repro.core import LongSightConfig
from repro.llm.config import PAPER_MODELS
from repro.system import AttAccSystem, DenseGpuSystem, LongSightSystem


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="llama-3-8b",
                        choices=sorted(PAPER_MODELS))
    parser.add_argument("--context", type=int, default=262144)
    parser.add_argument("--slo-ms", type=float, default=None,
                        help="per-token latency SLO; limits the user count")
    parser.add_argument("--top-k", type=int, default=1024)
    parser.add_argument("--window", type=int, default=1024)
    args = parser.parse_args()

    config = PAPER_MODELS[args.model]
    systems = [
        DenseGpuSystem(1),
        DenseGpuSystem(2),
        AttAccSystem(),
        LongSightSystem(LongSightConfig(window=args.window, n_sink=16,
                                        top_k=args.top_k, use_itq=True)),
    ]

    print(f"Model {config.name}: {config.n_layers} layers, "
          f"{config.n_q_heads}/{config.n_kv_heads} heads, "
          f"{config.kv_bytes_per_token() // 1024} KiB of KV per token")
    print(f"Context {args.context:,} tokens "
          f"(~{args.context * config.kv_bytes_per_token() / 2**30:.1f} GiB "
          f"of KV cache per user)\n")
    header = (f"{'system':<12} {'max users':>9} {'best users':>10} "
              f"{'tput tok/s':>11} {'latency ms':>10}")
    print(header)
    print("-" * len(header))
    for system in systems:
        max_users = system.max_users(config, args.context)
        if max_users < 1:
            print(f"{system.name:<12} {'OOM':>9}")
            continue
        point = best_point(system, config, args.context)
        if args.slo_ms is not None:
            # Largest user count whose latency meets the SLO.
            point = None
            for users in range(max_users, 0, -1):
                cand = system.evaluate(config, args.context, users)
                if cand and cand.token_latency_s * 1e3 <= args.slo_ms:
                    point = cand
                    break
        if point is None:
            print(f"{system.name:<12} {max_users:>9} "
                  f"{'(SLO unmet)':>10}")
            continue
        print(f"{system.name:<12} {max_users:>9} {point.n_users:>10} "
              f"{point.throughput_tps:>11.0f} "
              f"{point.token_latency_s * 1e3:>10.2f}")
    print("\n(best users = highest-throughput batch size"
          + (", subject to the SLO" if args.slo_ms else "") + ")")


if __name__ == "__main__":
    main()
