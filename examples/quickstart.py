#!/usr/bin/env python
"""Quickstart: LongSight sparse attention vs dense attention.

Mirrors the paper artifact's ``src/example.py``: benchmark one LongSight
configuration against dense attention and print baseline perplexity,
sparse perplexity, and the KV cache filter ratio.

Run:
    python examples/quickstart.py            # quick (trains a small model)
    python examples/quickstart.py --steps 1200 --context 4096   # full

The first run trains a miniature Llama-style model on a synthetic corpus
(cached under .cache/); later runs start instantly.
"""

import argparse

import numpy as np

from repro.bench import algo
from repro.core import (
    FilterStats,
    LongSightAttention,
    LongSightConfig,
    fit_itq,
)
from repro.data.synthetic import pg_like
from repro.llm.perplexity import perplexity
from repro.llm.zoo import trained_model


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="llama-sim-small",
                        choices=["llama-sim-small", "llama-sim-base"])
    parser.add_argument("--steps", type=int, default=None,
                        help="training steps for the miniature model "
                             "(default: the full cached recipe)")
    parser.add_argument("--context", type=int, default=2048)
    parser.add_argument("--window", type=int, default=algo.WINDOW)
    parser.add_argument("--top-k", type=int, default=algo.TOP_K_LARGE)
    parser.add_argument("--threshold", type=float, default=None,
                        help="SCF threshold (default: head_dim/2 + 2)")
    args = parser.parse_args()

    print(f"Loading/training {args.model}...")
    model = trained_model(args.model, steps=args.steps)
    threshold = args.threshold if args.threshold is not None \
        else model.config.head_dim // 2 + 2
    tokens = pg_like(args.context, seed=3)

    print(f"Evaluating dense attention over {args.context} tokens...")
    dense_ppl = perplexity(model, tokens)

    print("Fitting ITQ rotations (1K-token sample)...")
    rotations = fit_itq(model, pg_like(1024, seed=11))

    config = LongSightConfig(window=args.window, n_sink=algo.N_SINK,
                             top_k=args.top_k, thresholds=threshold,
                             use_itq=True)
    stats = FilterStats(model.config.n_layers, model.config.n_kv_heads)
    backend = LongSightAttention(config, rotations=rotations, stats=stats)
    print(f"Evaluating LongSight hybrid attention "
          f"(W={config.window}, k={config.top_k}, TH={threshold})...")
    sparse_ppl = perplexity(model, tokens, backend=backend)

    print()
    print(f"  baseline (dense) perplexity : {dense_ppl:8.3f}")
    print(f"  LongSight sparse perplexity : {sparse_ppl:8.3f} "
          f"({(sparse_ppl / dense_ppl - 1) * 100:+.2f}%)")
    print(f"  KV cache filter ratio       : {stats.filter_ratio:8.2f}x")
    print(f"  sparsity                    : {stats.sparsity * 100:8.2f}%")
    print(f"  sign-filter pass rate       : {stats.pass_rate * 100:8.2f}%")


if __name__ == "__main__":
    main()
