#!/usr/bin/env python
"""Multi-tenant serving under load: 1-GPU vs LongSight.

Simulates sessions arriving with long prompts (Poisson arrivals),
decoding in synchronized batches, and leaving — the "dynamic vector
database" regime of Section 4.  Shows how LongSight's DReX-backed
capacity translates into lower admission queueing and higher sustained
throughput for long-context traffic.

Run:
    python examples/multi_tenant_serving.py --prompt 131072 --sessions 24
"""

import argparse

from repro.core import LongSightConfig
from repro.llm.config import PAPER_MODELS
from repro.system import DenseGpuSystem, LongSightSystem
from repro.system.serving_sim import ServingSimulator, poisson_workload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="llama-3-8b",
                        choices=sorted(PAPER_MODELS))
    parser.add_argument("--prompt", type=int, default=131072)
    parser.add_argument("--output", type=int, default=16)
    parser.add_argument("--sessions", type=int, default=24)
    parser.add_argument("--rate", type=float, default=2.0,
                        help="session arrivals per second")
    args = parser.parse_args()

    config = PAPER_MODELS[args.model]
    systems = [
        DenseGpuSystem(1),
        DenseGpuSystem(2),
        LongSightSystem(LongSightConfig(window=1024, n_sink=16, top_k=1024,
                                        use_itq=True)),
    ]
    print(f"{args.sessions} sessions, {args.prompt:,}-token prompts "
          f"(~{args.prompt * config.kv_bytes_per_token() / 2**30:.1f} GiB "
          f"KV each), {args.output} output tokens, "
          f"{args.rate}/s Poisson arrivals\n")
    header = (f"{'system':<12} {'done':>5} {'tput tok/s':>10} "
              f"{'peak users':>10} {'queue delay':>11} {'session lat':>11}")
    print(header)
    print("-" * len(header))
    for system in systems:
        sessions = poisson_workload(args.sessions, args.rate, args.prompt,
                                    args.output, seed=11)
        outcome = ServingSimulator(system, config).run(sessions)
        print(f"{system.name:<12} {len(outcome.completed):>5} "
              f"{outcome.throughput_tps:>10.1f} "
              f"{outcome.peak_concurrency:>10} "
              f"{outcome.mean_queueing_delay_s():>10.2f}s "
              f"{outcome.mean_session_latency_s():>10.2f}s")


if __name__ == "__main__":
    main()
