"""Figure 4: accuracy vs filter-ratio Pareto frontier."""

from benchmarks.conftest import run_once

from repro.bench.fig4 import run_fig4


def test_fig4(benchmark, report):
    table = run_once(benchmark, lambda: run_fig4("llama-3-1b", "PG"))
    report(table)
    frontier = [r for r in table.rows if r["on_frontier"] == "yes"]
    assert frontier
    # The frontier must span a range of filter ratios (a real trade-off).
    ratios = [r["filter_ratio"] for r in table.rows]
    assert max(ratios) > 2 * min(ratios)
