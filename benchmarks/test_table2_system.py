"""Table 2: system configuration."""

from benchmarks.conftest import run_once

from repro.bench.spec_tables import run_table2


def test_table2(benchmark, report):
    table = run_once(benchmark, run_table2)
    report(table)
    values = {(r["device"], r["field"]): r["value"] for r in table.rows}
    assert values[("DReX", "PFUs")] == 8192
