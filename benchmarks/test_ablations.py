"""Ablations of LongSight's design choices (DESIGN.md checklist).

Each ablation switches off one mechanism the paper argues for and shows
the cost, using the analytical models:

- dense window size (the hybrid design's staging/overlap benefit),
- top-k size vs CXL pressure (Section 8.1.3's k-tuning rationale),
- channel interleaving of Key Objects (Section 7.3.3),
- value-read/compute overlap at saturation (Section 9.2).
"""

import pytest

from benchmarks.conftest import run_once

from repro.bench.tables import Table
from repro.core.config import LongSightConfig
from repro.drex.dram import LPDDR5X
from repro.llm.config import LLAMA3_8B
from repro.system.engine import LongSightSystem

CONTEXT = 262144


def test_ablation_window_size(benchmark, report):
    """Bigger dense windows shift work from DReX/CXL back to the GPU."""

    def run():
        table = Table(
            "Ablation: dense window size (llama-3-8b, 256K ctx, max users)",
            ["window", "max_users", "throughput_tps", "latency_ms",
             "bottleneck"])
        for window in (128, 512, 1024, 4096, 16384):
            engine = LongSightSystem(LongSightConfig(
                window=window, n_sink=16, top_k=1024, use_itq=True))
            users = engine.max_users(LLAMA3_8B, CONTEXT)
            point = engine.evaluate(LLAMA3_8B, CONTEXT, users)
            table.add_row(window=window, max_users=users,
                          throughput_tps=point.throughput_tps,
                          latency_ms=point.token_latency_s * 1e3,
                          bottleneck=engine.bottleneck(LLAMA3_8B, CONTEXT,
                                                       users))
        return table

    table = run_once(benchmark, run)
    report(table)
    assert len({row["bottleneck"] for row in table.rows}) >= 1


def test_ablation_top_k(benchmark, report):
    """Section 8.1.3: large k + high filter ratio bottlenecks CXL."""

    def run():
        table = Table(
            "Ablation: top-k size (llama-3-8b, 256K ctx, max users)",
            ["top_k", "throughput_tps", "cxl_ms_per_token",
             "drex_ms_per_token"])
        for k in (128, 256, 512, 1024):
            engine = LongSightSystem(LongSightConfig(
                window=1024, n_sink=16, top_k=k, use_itq=True))
            users = engine.max_users(LLAMA3_8B, CONTEXT)
            point = engine.evaluate(LLAMA3_8B, CONTEXT, users)
            table.add_row(top_k=k, throughput_tps=point.throughput_tps,
                          cxl_ms_per_token=point.breakdown["cxl_s"] * 1e3,
                          drex_ms_per_token=point.breakdown["drex_s"] * 1e3)
        return table

    table = run_once(benchmark, run)
    report(table)
    cxl = [row["cxl_ms_per_token"] for row in table.rows]
    assert cxl == sorted(cxl)  # CXL pressure grows with k


def test_ablation_channel_interleaving(benchmark, report):
    """Section 7.3.3: without interleaving, survivor reads hit one channel
    and the scoring stream slows ~8x."""

    def run():
        table = Table(
            "Ablation: Key Object channel interleaving (one offload's "
            "scoring stream)",
            ["survivors", "interleaved_us", "single_channel_us", "slowdown"])
        for survivors in (1000, 10000, 50000):
            n_bytes = survivors * 128 * 2
            fast = LPDDR5X.stream_ns(n_bytes, 8) / 1e3
            slow = LPDDR5X.stream_ns(n_bytes, 1) / 1e3
            table.add_row(survivors=survivors, interleaved_us=fast,
                          single_channel_us=slow, slowdown=slow / fast)
        return table

    table = run_once(benchmark, run)
    report(table)
    assert all(row["slowdown"] == pytest.approx(8.0) for row in table.rows)


def test_ablation_value_read_overlap(benchmark, report):
    """Section 9.2: overlapping value reads with queued dot-products."""

    def run():
        engine = LongSightSystem(LongSightConfig(window=1024, n_sink=16,
                                                 top_k=1024, use_itq=True))
        table = Table(
            "Ablation: value-read overlap at saturation (llama-3-8b)",
            ["context", "additive_us", "overlapped_us", "saved_pct"])
        for context in (32768, 262144, 1048576):
            single = engine.single_offload_breakdown(LLAMA3_8B, context)
            saturated = engine.saturated_offload_breakdown(LLAMA3_8B, context)
            additive = sum(single.values())
            overlapped = sum(saturated.values())
            table.add_row(context=context, additive_us=additive / 1e3,
                          overlapped_us=overlapped / 1e3,
                          saved_pct=(1 - overlapped / additive) * 100)
        return table

    table = run_once(benchmark, run)
    report(table)
    assert all(row["saved_pct"] >= 0 for row in table.rows)
