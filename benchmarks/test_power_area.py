"""Section 9.4: power and area."""

import pytest

from benchmarks.conftest import run_once

from repro.bench.spec_tables import run_power_area


def test_power_area(benchmark, report):
    table = run_once(benchmark, run_power_area)
    report(table)
    for row in table.rows:
        if row["paper"] is not None:
            assert row["value"] == pytest.approx(row["paper"], rel=0.01)
