"""Figure 3: non-window KV cache filter ratios (panels a, b, c).

These run the trained miniature models (first run trains and caches them;
subsequent runs reuse ``.cache/``).  Set REPRO_BENCH_FULL=1 to extend the
context sweep.
"""

from benchmarks.conftest import run_once

from repro.bench.fig3 import run_fig3


def _rows_ok(table):
    ok = [r for r in table.rows if r["meets_target"] == "yes"]
    assert ok, "no configuration met the perplexity target"
    return ok


def test_fig3a_baseline_sparse(benchmark, report):
    table = run_once(benchmark, lambda: run_fig3("a"))
    report(table)
    # The paper's finding: baseline sparse with small k struggles to meet
    # the perplexity target ('X') in at least some settings, while large k
    # configurations succeed somewhere.
    _rows_ok(table)


def test_fig3b_hybrid(benchmark, report):
    table = run_once(benchmark, lambda: run_fig3("b"))
    report(table)
    ok = _rows_ok(table)
    # Hybrid should meet the target broadly (the window restores quality).
    assert len(ok) >= len(table.rows) // 2


def test_fig3c_hybrid_itq(benchmark, report):
    table = run_once(benchmark, lambda: run_fig3("c"))
    report(table)
    ok = _rows_ok(table)
    ratios = [r["filter_ratio"] for r in ok]
    assert max(ratios) > 1.0
