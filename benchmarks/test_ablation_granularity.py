"""Ablation: threshold granularity (Section 5.1's design decision).

The paper: "fine-grained thresholding (i.e., setting a threshold for each
Q head) has the potential to be more expressive ... Nonetheless, we found
that assigning a threshold to each Q query head introduced instability in
our threshold tuning algorithm.  Instead, we assign a threshold to each
KV head."

We run the same greedy tuner at both granularities on the trained
miniature and compare trajectories: accepted iterations before the budget
is blown, final filter ratio, and perplexity oscillation along the way.
"""

import numpy as np

from benchmarks.conftest import run_once

from repro.bench import algo
from repro.bench.tables import Table
from repro.core.tuning import tune_thresholds
from repro.llm.perplexity import perplexity


def test_ablation_threshold_granularity(benchmark, report):
    def run():
        model = algo.get_model("llama-3-1b")
        tokens = algo.get_tokens("PG", 2048)
        dense = perplexity(model, tokens)
        config = algo.variant_config("hybrid+itq", algo.TOP_K_LARGE)
        rotations = algo.get_rotations("llama-3-1b")
        table = Table(
            "Ablation: SCF threshold granularity (llama-3-1b stand-in)",
            ["granularity", "iterations", "final_filter_ratio",
             "final_ppl_increase_pct", "ppl_oscillation",
             "thresholds_tuned"])
        for granularity in ("kv_head", "q_head"):
            result = tune_thresholds(
                model, tokens, config, dense, max_increase=0.05,
                step=max(1, model.config.head_dim // 8),
                max_iterations=16, rotations=rotations,
                granularity=granularity)
            ppls = np.array([p for p, _ in result.history])
            oscillation = float(np.abs(np.diff(ppls)).mean()) if \
                len(ppls) > 1 else 0.0
            table.add_row(
                granularity=granularity,
                iterations=result.iterations,
                final_filter_ratio=result.filter_ratio,
                final_ppl_increase_pct=(result.perplexity / dense - 1) * 100,
                ppl_oscillation=oscillation,
                thresholds_tuned=int((result.thresholds > 0).sum()))
        return table

    table = run_once(benchmark, run)
    report(table)
    assert len(table.rows) == 2
    for row in table.rows:
        assert row["final_ppl_increase_pct"] <= 5.0 + 1e-6
