"""Figure 7: decode throughput & per-token latency across systems."""

from benchmarks.conftest import run_once

from repro.bench.fig7 import headline_speedups, run_fig7
from repro.bench.tables import Table
from repro.llm.config import LLAMA3_1B, LLAMA3_8B


def test_fig7(benchmark, report):
    table = run_once(benchmark, run_fig7)
    report(table)
    rows = {(r["model"], r["context"], r["system"]): r for r in table.rows}
    # LongSight serves 1M tokens on one GPU; 8B dense cannot.
    assert rows[("llama-3-8b", 1048576, "1-GPU")]["throughput_tps"] is None
    assert rows[("llama-3-8b", 1048576, "LongSight")]["throughput_tps"] > 0
    # Crossover: dense/AttAcc win short contexts, LongSight wins long.
    assert rows[("llama-3-1b", 8192, "2-GPU")]["throughput_tps"] > \
        rows[("llama-3-1b", 8192, "LongSight")]["throughput_tps"]
    assert rows[("llama-3-1b", 524288, "LongSight")]["throughput_tps"] > \
        rows[("llama-3-1b", 524288, "2-GPU")]["throughput_tps"]


def test_headline_speedup(benchmark, report):
    """Section 9.1: 8.1-9.6x throughput, 3.6-11.9x per-user latency at the
    max context a single GPU supports."""

    def run():
        table = Table(
            "Section 9.1 headline: LongSight vs 1-GPU at max 1-GPU context",
            ["model", "context", "throughput_ratio",
             "per_user_latency_ratio", "paper_range"])
        for config in (LLAMA3_1B, LLAMA3_8B):
            h = headline_speedups(config)
            table.add_row(model=config.name, context=h["context"],
                          throughput_ratio=h["throughput_ratio"],
                          per_user_latency_ratio=h["per_user_latency_ratio"],
                          paper_range="8.1-9.6x tput / 3.6-11.9x lat")
        return table

    table = run_once(benchmark, run)
    report(table)
    for row in table.rows:
        assert 4.0 <= row["throughput_ratio"] <= 20.0
        assert 2.0 <= row["per_user_latency_ratio"] <= 20.0
