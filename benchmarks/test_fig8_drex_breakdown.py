"""Figure 8: latency breakdown inside a DReX offload."""

from benchmarks.conftest import run_once

from repro.bench.fig8 import run_fig8


def test_fig8(benchmark, report):
    table = run_once(benchmark, run_fig8)
    report(table)
    singles = {(r["model"], r["context"]): r for r in table.rows
               if r["scenario"] == "single"}
    # Short contexts: value loading over CXL dominates (Section 9.2).
    short = singles[("llama-3-8b", 8192)]
    assert short["value_read"] > short["score"]
    # Long contexts: the dot-product phase grows to dominate.
    long = singles[("llama-3-8b", 1048576)]
    assert long["score"] > long["value_read"]
    # Saturated scenario exposes less value-read time than single-user.
    for row in table.rows:
        if row["scenario"] == "saturated":
            single = singles[(row["model"], row["context"])]
            assert row["value_read"] <= single["value_read"] + 1e-9
