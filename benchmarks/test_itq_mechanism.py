"""Mechanism verification: ITQ rescues SCF on clustered vectors (§5.4).

The paper's claim is that clustered K/Q distributions starve sign-
concordance filtering and that an ITQ rotation restores its
discriminative power.  At miniature LLM scale (16–32-dim heads) enough
balanced dimensions survive for raw SCF, so the *gain* is hard to see in
Figure 3c (see EXPERIMENTS.md); this bench isolates the mechanism on
controlled data with Llama-like pathology — a strong shared component
plus low-rank structure — and measures top-k recall at matched pass rate.
"""

import numpy as np

from benchmarks.conftest import run_once

from repro.bench.tables import Table
from repro.core.itq import learn_itq_rotation
from repro.core.scf import concordance

D = 64
N_KEYS = 4000
N_QUERIES = 64
TOP_K = 32


def make_clustered(rng, n, d=D, shift=2.5, rank=4):
    """Llama-key-like geometry: common offset + low-rank + noise."""
    basis = rng.normal(size=(rank, d))
    coeff = rng.normal(size=(n, rank)) * 2.0
    return rng.normal(size=(n, d)) + coeff @ basis + shift


def recall_at_matched_pass_rate(queries, keys, filter_q, filter_k,
                                target_pass=0.10):
    """Mean recall of the true top-k among keys passing the sign filter,
    with the threshold chosen per query to pass ~target_pass of keys."""
    true_scores = queries @ keys.T
    conc = concordance(filter_q, filter_k)
    recalls = []
    for i in range(len(queries)):
        order = np.sort(conc[i])[::-1]
        threshold = order[max(0, int(target_pass * len(keys)) - 1)]
        passed = conc[i] >= threshold
        top = np.argsort(-true_scores[i])[:TOP_K]
        recalls.append(passed[top].mean())
    return float(np.mean(recalls)), float(conc.std())


def test_itq_mechanism(benchmark, report):
    def run():
        rng = np.random.default_rng(5)
        table = Table(
            "ITQ mechanism: top-k recall under sign filtering at a 10% "
            "pass rate",
            ["geometry", "filter", "recall_at_10pct", "concordance_std"],
            note=f"{N_KEYS} keys, {N_QUERIES} queries, d={D}, "
                 f"k={TOP_K}; higher recall = better filter.")
        for label, shift in (("balanced (shift=0)", 0.0),
                             ("clustered (shift=2.5)", 2.5)):
            keys = make_clustered(rng, N_KEYS, shift=shift)
            queries = make_clustered(rng, N_QUERIES, shift=shift)
            rotation = learn_itq_rotation(
                np.concatenate([keys[:1000], queries]), n_iter=40, seed=0)
            raw, raw_std = recall_at_matched_pass_rate(
                queries, keys, queries, keys)
            itq, itq_std = recall_at_matched_pass_rate(
                queries, keys, queries @ rotation, keys @ rotation)
            table.add_row(geometry=label, filter="raw signs",
                          recall_at_10pct=raw, concordance_std=raw_std)
            table.add_row(geometry=label, filter="ITQ-rotated",
                          recall_at_10pct=itq, concordance_std=itq_std)
        return table

    table = run_once(benchmark, run)
    report(table)
    rows = {(r["geometry"], r["filter"]): r["recall_at_10pct"]
            for r in table.rows}
    clustered_gain = rows[("clustered (shift=2.5)", "ITQ-rotated")] \
        - rows[("clustered (shift=2.5)", "raw signs")]
    assert clustered_gain > 0.02, \
        "ITQ must improve recall on clustered geometry"
