"""Figure 9: system-level latency breakdown for LongSight."""

from benchmarks.conftest import run_once

from repro.bench.fig9 import run_fig9


def test_fig9(benchmark, report):
    table = run_once(benchmark, run_fig9)
    report(table)
    # Few users -> GPU-bound regardless of context (Section 9.2).
    single_user = [r for r in table.rows if r["users"] == 1]
    assert single_user
    assert all(r["bottleneck"] == "GPU" or r["context"] >= 524288
               for r in single_user)
    # Saturated short-context -> DReX/CXL-bound.
    saturated_short = [r for r in table.rows
                       if r["users"] > 1 and r["context"] <= 32768]
    assert any(r["bottleneck"] in ("DReX", "CXL") for r in saturated_short)
