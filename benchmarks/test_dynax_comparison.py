"""Section 5.4: sparsity vs DynaX at a 1% perplexity budget."""

from benchmarks.conftest import run_once

from repro.bench.dynax import run_dynax


def test_dynax_comparison(benchmark, report):
    table = run_once(benchmark, lambda: run_dynax("llama-3-8b"))
    report(table)
    repro_row = next(r for r in table.rows
                     if r["system"] == "LongSight (this repro)")
    # The shape to preserve: substantial sparsity under a tight (1%)
    # quality budget.  Absolute sparsity is lower than the paper's 91.9%:
    # the miniature's 32-dim heads give the sign filter far fewer bits of
    # resolution than Llama-3-8B's 128-dim heads (see EXPERIMENTS.md).
    assert repro_row["sparsity_pct"] > 30.0
