"""Extension experiment: multi-tenant serving under Poisson arrivals.

Not a paper figure — an ablation of the Section 4 "dynamic updates"
requirement: sessions arrive, grow their per-head KV databases every
token, and leave.  Compares 1-GPU, 2-GPU and LongSight on admission
queueing delay, sustained throughput and peak concurrency for long-prompt
traffic.
"""

from benchmarks.conftest import run_once

from repro.bench.tables import Table
from repro.core.config import LongSightConfig
from repro.llm.config import LLAMA3_8B
from repro.system.baselines import DenseGpuSystem
from repro.system.engine import LongSightSystem
from repro.system.serving_sim import ServingSimulator, poisson_workload

PROMPT = 131072
OUTPUT = 32
N_SESSIONS = 24
ARRIVAL_RATE = 50.0  # sessions/second (saturating load)


def test_serving_trace(benchmark, report):
    def run():
        systems = [
            DenseGpuSystem(1),
            DenseGpuSystem(2),
            LongSightSystem(LongSightConfig(window=1024, n_sink=16,
                                            top_k=1024, use_itq=True)),
        ]
        table = Table(
            f"Serving trace: {N_SESSIONS} Poisson sessions, "
            f"{PROMPT // 1024}K prompts, {OUTPUT} output tokens "
            f"(llama-3-8b)",
            ["system", "completed", "throughput_tps", "peak_concurrency",
             "mean_queue_delay_s", "mean_session_latency_s"])
        for system in systems:
            sessions = poisson_workload(N_SESSIONS, ARRIVAL_RATE, PROMPT,
                                        OUTPUT, seed=11)
            outcome = ServingSimulator(system, LLAMA3_8B).run(sessions)
            table.add_row(
                system=system.name,
                completed=len(outcome.completed),
                throughput_tps=outcome.throughput_tps,
                peak_concurrency=outcome.peak_concurrency,
                mean_queue_delay_s=outcome.mean_queueing_delay_s(),
                mean_session_latency_s=outcome.mean_session_latency_s())
        return table

    table = run_once(benchmark, run)
    report(table)
    rows = {r["system"]: r for r in table.rows}
    assert rows["LongSight"]["peak_concurrency"] >= \
        rows["1-GPU"]["peak_concurrency"]
    assert rows["LongSight"]["mean_queue_delay_s"] <= \
        rows["1-GPU"]["mean_queue_delay_s"]
    assert all(r["completed"] == N_SESSIONS for r in table.rows)
