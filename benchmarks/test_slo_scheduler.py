"""SLO attainment under load (Section 4's latency-budget discussion).

The paper frames each layer's attention as having a Service Level
Objective of "a few hundred microseconds".  This experiment runs the
discrete-event DReX scheduler for one decode layer across user counts and
reports mean/p99 offload latency, SLO attainment, NMA utilization — and
cross-validates the analytical queueing approximation used by Figure 7.
"""

import pytest

from benchmarks.conftest import run_once

from repro.bench.tables import Table
from repro.core.config import LongSightConfig
from repro.llm.config import LLAMA3_8B
from repro.system.engine import LongSightSystem

CONTEXT = 131072
SLO_NS = 300_000.0  # 300 us per-layer attention budget


def test_slo_attainment(benchmark, report):
    engine = LongSightSystem(LongSightConfig(window=1024, n_sink=16,
                                             top_k=1024, use_itq=True))

    def run():
        table = Table(
            "SLO attainment: DReX offload latency vs load "
            f"(llama-3-8b, {CONTEXT // 1024}K ctx, SLO={SLO_NS / 1e3:.0f}us)",
            ["users", "mean_us", "p99_us", "slo_attainment",
             "nma_utilization", "makespan_us", "analytical_us"])
        for users in (1, 4, 8, 16, 31):
            outcome = engine.simulate_decode_layer(LLAMA3_8B, CONTEXT, users)
            analytical = max(
                engine.drex_layer_latency_ns(LLAMA3_8B, CONTEXT, users),
                engine.cxl_layer_latency_ns(LLAMA3_8B, CONTEXT, users))
            table.add_row(
                users=users,
                mean_us=outcome.mean_latency_ns() / 1e3,
                p99_us=outcome.p99_latency_ns() / 1e3,
                slo_attainment=outcome.slo_attainment(SLO_NS),
                nma_utilization=outcome.nma_utilization(),
                makespan_us=outcome.makespan_ns / 1e3,
                analytical_us=analytical / 1e3)
        return table

    table = run_once(benchmark, run)
    report(table)
    by_users = {row["users"]: row for row in table.rows}
    # Latency grows with load; a single user comfortably meets the SLO.
    assert by_users[1]["slo_attainment"] == 1.0
    means = [by_users[u]["mean_us"] for u in (1, 8, 31)]
    assert means == sorted(means)
    # The analytical approximation tracks the simulated makespan within 2x.
    for row in table.rows:
        assert row["analytical_us"] <= row["makespan_us"] * 1.05
        assert row["makespan_us"] <= row["analytical_us"] * 2.0 + 50.0
