"""Benchmark-suite fixtures.

Every benchmark both *times* its experiment via pytest-benchmark and
*prints/saves* the paper-style table it regenerates (under ``results/``).
"""

from __future__ import annotations

import pytest

from repro.bench.tables import Table, results_dir


@pytest.fixture
def report():
    """Print a result table to the terminal and persist it to results/."""

    def _report(table: Table) -> Table:
        print()
        print(table.render())
        table.save(results_dir())
        return table

    return _report


def run_once(benchmark, fn):
    """Time ``fn`` exactly once (experiments are deterministic and slow)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
