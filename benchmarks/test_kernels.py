"""Microbenchmarks of the core kernels (pytest-benchmark timings).

These are the operations a production port would optimize first; the
figure-level benchmarks above time whole experiments instead.
"""

import numpy as np
import pytest

from repro.core.config import LongSightConfig
from repro.core.hybrid import LongSightAttention
from repro.core.itq import learn_itq_rotation
from repro.core.scf import concordance, concordance_packed, pack_signs
from repro.core.sparse import sparse_retrieve
from repro.core.topk import top_k_mask
from repro.drex.descriptors import RequestDescriptor
from repro.drex.device import DrexDevice

RNG = np.random.default_rng(7)
D = 64
N_KEYS = 8192
KEYS = RNG.normal(size=(N_KEYS, D))
QUERIES = RNG.normal(size=(16, D))
SCORES = RNG.normal(size=(64, N_KEYS))


def test_bench_concordance_float(benchmark):
    result = benchmark(concordance, QUERIES, KEYS)
    assert result.shape == (16, N_KEYS)


def test_bench_concordance_packed(benchmark):
    qp, kp = pack_signs(QUERIES), pack_signs(KEYS)
    result = benchmark(concordance_packed, qp, kp, D)
    assert result.shape == (16, N_KEYS)


def test_bench_pack_signs(benchmark):
    packed = benchmark(pack_signs, KEYS)
    assert packed.shape == (N_KEYS, D // 8)


def test_bench_top_k_mask(benchmark):
    mask = benchmark(top_k_mask, SCORES, 128)
    assert mask.sum() == 64 * 128


def test_bench_sparse_retrieve(benchmark):
    result = benchmark(sparse_retrieve, QUERIES[0], KEYS, 33, 128)
    assert result.n_retrieved <= 128


def test_bench_itq_learning(benchmark):
    sample = RNG.normal(size=(1024, D)) + 1.0
    rotation = benchmark.pedantic(
        lambda: learn_itq_rotation(sample, n_iter=25), rounds=1, iterations=1)
    assert rotation.shape == (D, D)


def test_bench_drex_offload(benchmark):
    device = DrexDevice(n_layers=1, n_kv_heads=4, n_q_heads=16, head_dim=D,
                        thresholds=33)
    device.register_user(0)
    for head in range(4):
        device.write_kv(0, 0, head, KEYS[:2048], KEYS[:2048])
    request = RequestDescriptor(uid=0, layer=0,
                                queries=RNG.normal(size=(16, D)), top_k=128)
    response = benchmark(device.execute, request)
    assert len(response.heads) == 16


def test_bench_hybrid_attention_block(benchmark):
    config = LongSightConfig(window=128, n_sink=16, top_k=128, thresholds=33)
    backend = LongSightAttention(config)
    q = RNG.normal(size=(16, 64, D))     # 64-query block
    k = RNG.normal(size=(4, 4096, D))
    v = RNG.normal(size=(4, 4096, D))
    out = benchmark(backend.forward, 0, q, k, v)
    assert out.shape == q.shape
