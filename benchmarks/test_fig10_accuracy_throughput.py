"""Figure 10: accuracy vs normalized throughput, LongSight vs sliding window."""

from benchmarks.conftest import run_once

from repro.bench.fig10 import run_fig10


def test_fig10(benchmark, report):
    table = run_once(benchmark, lambda: run_fig10("llama-3-1b", "PG"))
    report(table)
    ls_rows = [r for r in table.rows if r["config"].startswith("LongSight")]
    sw_rows = [r for r in table.rows
               if r["config"].startswith("SlidingWindow")]
    assert ls_rows and sw_rows
    # Structural checks that hold at miniature scale: LongSight reaches
    # high accuracy (>= 0.97 of dense) at a genuine speedup over dense.
    # NOTE: the paper's Pareto *expansion over sliding window* does not
    # reproduce here — the synthetic corpus + miniature models lose too
    # little quality to window truncation for sparse retrieval to beat a
    # wider window; see EXPERIMENTS.md ("Caveats", item on Fig. 10).
    assert any(r["accuracy_vs_dense"] >= 0.97
               and r["normalized_throughput"] > 1.0 for r in ls_rows)
    # Window shrinking does trade accuracy for throughput (a real
    # frontier exists on the baseline side too).
    accs = sorted(r["accuracy_vs_dense"] for r in sw_rows)
    assert accs[0] < accs[-1]
