"""Table 1: model parameters."""

from benchmarks.conftest import run_once

from repro.bench.spec_tables import run_table1


def test_table1(benchmark, report):
    table = run_once(benchmark, run_table1)
    report(table)
    assert len(table.rows) >= 5
